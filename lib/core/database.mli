(** Top-level SQL Ledger database.

    Owns the table registry (ledger and regular tables), the Database
    Ledger, digest generation, DDL with ledgered metadata history (§3.5 /
    Figure 6), SQL query access, and backup/restore for the recovery
    scenarios of §3.6–3.7. *)

type t

type table_kind = [ `Append_only | `Updateable | `Regular ]

val create :
  ?block_size:int ->
  ?wal_path:string ->
  ?signing_seed:string ->
  ?commit_cost_us:float ->
  ?clock:(unit -> float) ->
  name:string ->
  unit ->
  t
(** [block_size] defaults to 100_000 (paper default). [clock] defaults to
    the wall clock; tests inject a deterministic one. [signing_seed]
    enables block signing for receipts. *)

val name : t -> string
val database_id : t -> string
val create_time : t -> float
val now : t -> float
val ledger : t -> Database_ledger.t

(** {1 DDL} *)

val create_ledger_table :
  t ->
  ?kind:[ `Append_only | `Updateable ] ->
  name:string ->
  columns:Relation.Column.t list ->
  key:string list ->
  unit ->
  Ledger_table.t
(** Create a ledger table ([`Updateable] by default); the creation event is
    itself recorded in the ledgered metadata tables. Raises
    {!Types.Ledger_error} on duplicate names, [Invalid_argument] on bad
    schemas. *)

val create_regular_table :
  t ->
  name:string ->
  columns:Relation.Column.t list ->
  key:string list ->
  unit ->
  Storage.Table_store.t

val drop_table : t -> name:string -> unit
(** Logical drop (§3.5.2): the table is renamed out of the user namespace
    ("MS_DroppedTable_<name>_<id>") but its data stays verifiable. *)

val add_column : t -> table:string -> Relation.Column.t -> unit
(** §3.5.1: the column must be nullable; existing row hashes are unaffected
    because NULLs are skipped by the serialization format. *)

val drop_column : t -> table:string -> column:string -> unit
(** §3.5.2: hides the column; data remains stored and hashed. *)

val alter_column_type :
  t -> table:string -> column:string -> Relation.Datatype.t ->
  convert:(Relation.Value.t -> Relation.Value.t) -> unit
(** §3.5.3: implemented as drop + re-add + ledgered repopulation of every
    current row with [convert]. *)

val create_index : t -> table:string -> name:string -> columns:string list -> unit
val drop_index : t -> table:string -> name:string -> unit

(** {1 Lookup} *)

val ledger_table : t -> string -> Ledger_table.t
(** Raises {!Types.Ledger_error} when absent (case-insensitive lookup). *)

val find_ledger_table : t -> string -> Ledger_table.t option
val regular_table : t -> string -> Storage.Table_store.t
val ledger_tables : t -> Ledger_table.t list
(** All ledger tables including logically dropped ones and the two metadata
    system tables. *)

val user_ledger_tables : t -> Ledger_table.t list
(** Excluding dropped and system metadata tables. *)

(** {1 Transactions} *)

val begin_txn : t -> user:string -> Txn.t

val begin_staged_txn : t -> user:string -> Txn.t
(** {!Txn.begin_staged_txn} against this database's ledger: the
    transaction's WAL records are all deferred to {!Txn.stage_commit} for
    a group-commit leader to publish as one batch. *)

val with_txn : t -> user:string -> (Txn.t -> 'a) -> 'a * Types.txn_entry
(** Run, then commit; rolls back and re-raises on exception. *)

(** {1 Digests, checkpoints, recovery} *)

val generate_digest : t -> Digest.t option
val checkpoint : t -> unit

val snapshot : t -> t
(** O(tables) frozen view for lock-free readers: shares the copy-on-write
    B+tree roots of every table plus the ledger's chain state. The result
    is an ordinary [t], so the whole read surface ([query], [catalog],
    {!Verifier.verify}, {!Receipt.generate}) works on it unchanged — but it
    must never be handed to a write path. Capture while holding the writer
    side of the server lock (or as the sole mutator). *)

val backup : t -> t
(** Transactionally consistent deep copy (the paper's database copy /
    backup, §3.7). The copy shares no mutable state with the original. *)

val restore : t -> create_time:float -> t
(** Restore from a backup as a new incarnation: fresh create time (§3.6),
    same database id. *)

(** {1 SQL access} *)

val catalog : t -> Sqlexec.Executor.catalog
(** Exposes, per ledger table [T]: [T] (visible columns), [T__history],
    [T__versions] (txn_id, seq, operation, row_hash, then visible columns)
    and [T__ledger_view] (Figure 2); regular tables by name; and the system
    tables [database_ledger_transactions] and [database_ledger_blocks]. *)

val query : t -> string -> Sqlexec.Rel.t
(** Parse and run a SQL query against {!catalog}. *)

val record_truncation :
  t -> horizon_block:int -> horizon_hash:string -> max_txn:int -> unit
(** Record a ledger-truncation event (§5.2) in the ledgered metadata table
    so that the truncation itself is audited and the verifier can anchor the
    first surviving block. *)

val truncation_horizons : t -> (int * string * int) list
(** Recorded truncation events: (horizon block id, horizon block hash (raw),
    max truncated transaction id). *)

(** {1 Replay support (used by {!Wal_replay})} *)

val table_by_id :
  t -> int -> [ `L of Ledger_table.t | `R of Storage.Table_store.t ] option

val apply_structural_ddl : t -> Sjson.t -> (unit, string) result
(** Re-apply a logged DDL record structurally: no re-logging, no metadata
    transaction (those were logged as data in the original run). *)

val refresh_counters : t -> unit
(** Recompute the table-id and metadata-event allocators from current
    contents (end of replay). *)

(** {1 Snapshot support (used by {!Snapshot})} *)

type raw_state = {
  raw_name : string;
  raw_created : float;
  raw_next_table_id : int;
  raw_next_meta_event : int;
  raw_tables : [ `L of Ledger_table.t | `R of Storage.Table_store.t ] list;
  raw_ledger : Database_ledger.t;
}

val expose : t -> raw_state
val assemble : clock:(unit -> float) -> raw_state -> t
(** Raises {!Types.Ledger_error} when the metadata system tables are
    missing from [raw_tables]. *)

(** {1 Metadata (Figure 6)} *)

val tables_meta : t -> Ledger_table.t
val columns_meta : t -> Ledger_table.t
