module Hex = Ledger_crypto.Hex
module Lamport = Ledger_crypto.Lamport

type t = {
  entry : Types.txn_entry;
  leaf : string;  (* the entry's ledger hash — the Merkle leaf proven *)
  proof : Merkle.Proof.t;
  block : Types.block;
  public_key : Lamport.public_key option;
  signature : Lamport.signature option;
}

type issue_error =
  | Unknown_txn
  | Open_block
  | Inconsistent of string

let issue_error_to_string ~txn_id = function
  | Unknown_txn ->
      Printf.sprintf "transaction %d is not in the ledger" txn_id
  | Open_block ->
      Printf.sprintf
        "transaction %d is in the open block; generate a digest to close it \
         first"
        txn_id
  | Inconsistent e -> e

let generate db ~txn_id =
  let dbl = Database.ledger db in
  match Database_ledger.find_entry dbl ~txn_id with
  | None -> Error (Printf.sprintf "transaction %d is not in the ledger" txn_id)
  | Some entry ->
      let blocks = Database_ledger.blocks dbl in
      (match
         List.find_opt
           (fun (b : Types.block) -> b.block_id = entry.block_id)
           blocks
       with
      | None ->
          Error
            (Printf.sprintf
               "transaction %d is in the open block; generate a digest to \
                close it first"
               txn_id)
      | Some block ->
          let entries = Database_ledger.entries_of_block dbl ~block_id:block.block_id in
          let leaves = List.map Database_ledger.entry_hash entries in
          let tree = Merkle.Tree.of_leaves leaves in
          if not (String.equal (Merkle.Tree.root tree) block.txn_root) then
            Error "ledger is internally inconsistent; run verification"
          else begin
            let proof = Merkle.Tree.proof tree entry.ordinal in
            let pk, signature =
              match Database_ledger.block_signature dbl ~block_id:block.block_id with
              | Some (pk, s) -> (Some pk, Some s)
              | None -> (None, None)
            in
            Ok
              {
                entry;
                leaf = Database_ledger.entry_hash entry;
                proof;
                block;
                public_key = pk;
                signature;
              }
          end)

(* Cached issuance: the block's materialized Merkle tree, entry index and
   one-time signature come from the ledger's receipt cache, so N receipts
   against one block share the subtree hashes and a single signing
   operation instead of rebuilding the tree per request. Produces
   byte-identical receipts to {!generate} (same entries, same tree shape,
   same deterministic signature). *)
let generate_cached db ~txn_id =
  let dbl = Database.ledger db in
  match Database_ledger.locate_txn dbl ~txn_id with
  | None -> Error Unknown_txn
  | Some entry -> (
      match Database_ledger.block_proofs dbl ~block_id:entry.block_id with
      | None -> Error Open_block
      | Some (block, tree) ->
          if not (String.equal (Merkle.Tree.root tree) block.txn_root) then
            Error
              (Inconsistent "ledger is internally inconsistent; run verification")
          else if entry.ordinal < 0 || entry.ordinal >= Merkle.Tree.leaf_count tree
          then
            Error
              (Inconsistent "ledger is internally inconsistent; run verification")
          else
            let proof = Merkle.Tree.proof tree entry.ordinal in
            let pk, signature =
              match
                Database_ledger.cached_block_signature dbl
                  ~block_id:block.block_id
              with
              | Some (pk, s) -> (Some pk, Some s)
              | None -> (None, None)
            in
            Ok
              {
                entry;
                leaf = Merkle.Tree.leaf tree entry.ordinal;
                proof;
                block;
                public_key = pk;
                signature;
              })

(* A committed-but-unprovable transaction: present in the ledger, still in
   the open block. The batch receipt service reports these as pending so a
   client retries after the next block close instead of treating them as
   lost. *)
let txn_pending db ~txn_id =
  let dbl = Database.ledger db in
  match Database_ledger.locate_txn dbl ~txn_id with
  | None -> false
  | Some entry -> entry.block_id >= Database_ledger.current_block_id dbl

type failure =
  | Tampered_row
  | Bad_path
  | Wrong_root
  | Stale_digest
  | Block_mismatch
  | Bad_signature
  | Wrong_key
  | Malformed of string

let failure_to_string = function
  | Tampered_row ->
      "tampered row: the transaction entry does not hash to the receipt's leaf"
  | Bad_path ->
      "bad path: the Merkle proof does not connect the transaction to the \
       block root"
  | Wrong_root ->
      "wrong root: the pinned digest's hash does not match the receipt's block"
  | Stale_digest -> "stale digest: the pinned digest covers a different block"
  | Block_mismatch -> "receipt entry and block disagree on the block id"
  | Bad_signature -> "block signature is invalid"
  | Wrong_key -> "signing key does not match the expected fingerprint"
  | Malformed e -> "malformed receipt: " ^ e

let verify ?digest ?expected_fingerprint r =
  if not (String.equal (Database_ledger.entry_hash r.entry) r.leaf) then
    Error Tampered_row
  else if r.entry.block_id <> r.block.block_id then Error Block_mismatch
  else if not (Merkle.Proof.verify ~root:r.block.txn_root ~leaf:r.leaf r.proof)
  then Error Bad_path
  else begin
    let block_hash = Database_ledger.block_hash r.block in
    let check_digest () =
      match digest with
      | None -> Ok ()
      | Some (d : Digest.t) ->
          if d.block_id <> r.block.block_id then Error Stale_digest
          else if not (String.equal d.block_hash block_hash) then
            Error Wrong_root
          else Ok ()
    in
    let check_signature () =
      match (r.public_key, r.signature) with
      | None, None -> Ok ()
      | Some pk, Some s ->
          if not (Lamport.verify pk ~msg:block_hash s) then Error Bad_signature
          else (
            match expected_fingerprint with
            | Some fp when not (String.equal fp (Lamport.fingerprint pk)) ->
                Error Wrong_key
            | _ -> Ok ())
      | _ -> Error (Malformed "receipt has a key without a signature (or vice versa)")
    in
    match check_digest () with
    | Error _ as e -> e
    | Ok () -> check_signature ()
  end

let to_json r =
  let e = r.entry in
  let b = r.block in
  Sjson.Obj
    ([
       ( "entry",
         Sjson.Obj
           [
             ("txn_id", Sjson.Int e.txn_id);
             ("block_id", Sjson.Int e.block_id);
             ("ordinal", Sjson.Int e.ordinal);
             ("commit_ts", Sjson.Float e.commit_ts);
             ("user", Sjson.String e.user);
             ("table_roots", Types.table_roots_to_json e.table_roots);
           ] );
       ("leaf", Sjson.String (Hex.encode r.leaf));
       ("proof", Merkle.Proof.to_json r.proof);
       ( "block",
         Sjson.Obj
           [
             ("block_id", Sjson.Int b.block_id);
             ("prev_hash", Sjson.String (Hex.encode b.prev_hash));
             ("txn_root", Sjson.String (Hex.encode b.txn_root));
             ("txn_count", Sjson.Int b.txn_count);
             ("closed_ts", Sjson.Float b.closed_ts);
           ] );
     ]
    @ (match r.public_key with
      | Some pk ->
          [
            ( "public_key",
              Sjson.String (Hex.encode (Lamport.public_key_to_string pk)) );
          ]
      | None -> [])
    @
    match r.signature with
    | Some s ->
        [ ("signature", Sjson.String (Hex.encode (Lamport.signature_to_string s))) ]
    | None -> [])

let float_member name json =
  match Sjson.member name json with
  | Sjson.Float f -> f
  | Sjson.Int i -> float_of_int i
  | _ -> failwith ("receipt field " ^ name ^ " must be a number")

let of_json json =
  try
    let ej = Sjson.member "entry" json in
    let table_roots =
      match Sjson.member "table_roots" ej with
      | Sjson.List _ as l -> (
          match Types.table_roots_of_string (Sjson.to_string l) with
          | Ok r -> r
          | Error e -> failwith e)
      | _ -> failwith "missing table_roots"
    in
    let entry : Types.txn_entry =
      {
        txn_id = Sjson.get_int (Sjson.member "txn_id" ej);
        block_id = Sjson.get_int (Sjson.member "block_id" ej);
        ordinal = Sjson.get_int (Sjson.member "ordinal" ej);
        commit_ts = float_member "commit_ts" ej;
        user = Sjson.get_string (Sjson.member "user" ej);
        table_roots;
      }
    in
    (* Receipts predating the leaf field carry the entry hash implicitly:
       recompute it, exactly as [generate] would have. *)
    let leaf =
      match Sjson.member "leaf" json with
      | Sjson.String s -> Hex.decode s
      | _ -> Database_ledger.entry_hash entry
    in
    let proof =
      match Merkle.Proof.of_json (Sjson.member "proof" json) with
      | Some p -> p
      | None -> failwith "malformed proof"
    in
    let bj = Sjson.member "block" json in
    let hex_field name =
      let s = Sjson.get_string (Sjson.member name bj) in
      if s = "" then "" else Hex.decode s
    in
    let block : Types.block =
      {
        block_id = Sjson.get_int (Sjson.member "block_id" bj);
        prev_hash = hex_field "prev_hash";
        txn_root = hex_field "txn_root";
        txn_count = Sjson.get_int (Sjson.member "txn_count" bj);
        closed_ts = float_member "closed_ts" bj;
      }
    in
    let public_key =
      match Sjson.member "public_key" json with
      | Sjson.String s -> (
          match Lamport.public_key_of_string (Hex.decode s) with
          | Some pk -> Some pk
          | None -> failwith "malformed public key")
      | _ -> None
    in
    let signature =
      match Sjson.member "signature" json with
      | Sjson.String s -> (
          match Lamport.signature_of_string (Hex.decode s) with
          | Some sg -> Some sg
          | None -> failwith "malformed signature")
      | _ -> None
    in
    Ok { entry; leaf; proof; block; public_key; signature }
  with
  | Failure e | Invalid_argument e -> Error ("malformed receipt: " ^ e)

(* Batched wire amortization (§5.1 at production rate). The public key
   and signature are by far a receipt's largest fields (a Lamport key is
   16 KiB before hex), and every receipt from one block carries the same
   pair — so a batch response ships them once per block: receipts
   travel stripped, next to a per-block key-material table, and the
   client re-attaches the fields to recover the self-contained
   single-receipt format byte for byte. *)

let strip_keys r = { r with public_key = None; signature = None }

let key_material r =
  match (r.public_key, r.signature) with
  | Some pk, Some s ->
      Some
        ( r.block.block_id,
          Sjson.Obj
            [
              ("block_id", Sjson.Int r.block.block_id);
              ( "public_key",
                Sjson.String (Hex.encode (Lamport.public_key_to_string pk)) );
              ( "signature",
                Sjson.String (Hex.encode (Lamport.signature_to_string s)) );
            ] )
  | _ -> None

let inflate_batch ~block_keys receipts =
  let keys = Hashtbl.create 8 in
  List.iter
    (fun k ->
      match (Sjson.member "block_id" k, Sjson.member "public_key" k,
             Sjson.member "signature" k)
      with
      | Sjson.Int b, (Sjson.String _ as pk), (Sjson.String _ as s) ->
          Hashtbl.replace keys b (pk, s)
      | _ -> ())
    block_keys;
  List.map
    (fun rj ->
      match rj with
      | Sjson.Obj fields when not (List.mem_assoc "public_key" fields) -> (
          match Sjson.member "block_id" (Sjson.member "block" rj) with
          | Sjson.Int b -> (
              match Hashtbl.find_opt keys b with
              | Some (pk, s) ->
                  Sjson.Obj (fields @ [ ("public_key", pk); ("signature", s) ])
              | None -> rj)
          | _ -> rj)
      | _ -> rj)
    receipts

let to_string r = Sjson.to_string ~pretty:true (to_json r)

let of_string s =
  match Sjson.of_string s with
  | exception Sjson.Parse_error e -> Error e
  | json -> of_json json
