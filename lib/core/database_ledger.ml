open Relation
module Table_store = Storage.Table_store
module Hex = Ledger_crypto.Hex
module Lamport = Ledger_crypto.Lamport

(* Receipt service memoization (§5.1 at production rate). A closed block
   is immutable, so its materialized Merkle tree, ordinal-indexed entry
   array and one-time block signature can be computed once and shared by
   every receipt issued for the block: N receipts from one block reuse
   the common subtree hashes, and one Lamport signing operation covers
   them all. *)
type block_proofs = {
  bp_block : Types.block;
  bp_tree : Merkle.Tree.t;
  bp_entries : Types.txn_entry array;  (* in (block, ordinal) order *)
  mutable bp_signature :
    (Lamport.public_key * Lamport.signature) option option;
      (* outer [None] = not yet computed *)
}

(* Bounded: a FIFO over resident block ids evicts whole blocks — tree,
   entries and the txn -> block index rows that point at them — so the
   cache holds the hot tail of the chain, not its entire history. *)
type receipt_cache = {
  rc_mu : Mutex.t;
  rc_blocks : (int, block_proofs) Hashtbl.t;
  rc_order : int Queue.t;
  rc_txns : (int, int) Hashtbl.t;  (* txn_id -> resident closed block *)
  rc_capacity : int;
}

let receipt_cache_capacity = 128

(* Blocks up to this size get their receipt tree built inline at block
   close (the leaves are already warm in [hash_cache], so the tree costs
   one extra hash per entry); larger blocks keep the parallel root-only
   aggregation on the close path and materialize the tree lazily on the
   first receipt request instead. *)
let receipt_tree_inline_max = 4096

let fresh_receipt_cache () =
  {
    rc_mu = Mutex.create ();
    rc_blocks = Hashtbl.create 64;
    rc_order = Queue.create ();
    rc_txns = Hashtbl.create 256;
    rc_capacity = receipt_cache_capacity;
  }

type t = {
  db_block_size : int;
  db_id : string;
  db_created : float;
  mutable db_wal : Aries.Wal.t;
  txn_table : Table_store.t;
  blocks_table : Table_store.t;
  mutable queue : Types.txn_entry list;  (* newest first; not yet flushed *)
  mutable next_txn : int;
  mutable current_block : int;
  mutable current_count : int;  (* transactions assigned to current block *)
  mutable last_block_hash : string;  (* hash of the last closed block *)
  mutable last_commit : float;
  signing_seed : string option;
  commit_cost_us : float;
  (* Group commit: entry hashes computed batch-at-a-time by the commit
     leader ([accumulate_batch]) and consumed when a block closes. Guarded
     by [hash_mu] because the leader runs outside the engine's writer
     lock. Purely a memo: a miss recomputes the hash. *)
  hash_cache : (int, string) Hashtbl.t;
  hash_mu : Mutex.t;
  (* Shared across record-copy snapshots like [hash_cache]: closed blocks
     never change, so a tree built through any snapshot serves them all.
     Guarded by [rc_mu]. *)
  receipt_cache : receipt_cache;
}

let transactions_table_columns =
  [ "txn_id"; "block_id"; "ordinal"; "commit_ts"; "username"; "table_roots" ]

let blocks_table_columns =
  [ "block_id"; "prev_hash"; "txn_root"; "txn_count"; "closed_ts" ]

let txn_table_schema =
  Schema.make
    [
      Column.make "txn_id" Datatype.Bigint;
      Column.make "block_id" Datatype.Bigint;
      Column.make "ordinal" Datatype.Bigint;
      Column.make "commit_ts" Datatype.Float;
      Column.make "username" (Datatype.Varchar 128);
      Column.make "table_roots" (Datatype.Varchar 65536);
    ]

let blocks_table_schema =
  Schema.make
    [
      Column.make "block_id" Datatype.Bigint;
      Column.make "prev_hash" (Datatype.Varchar 64);
      Column.make "txn_root" (Datatype.Varchar 64);
      Column.make "txn_count" Datatype.Bigint;
      Column.make "closed_ts" Datatype.Float;
    ]

let make_tables () =
  ( Table_store.create ~name:"database_ledger_transactions" ~table_id:(-1)
      ~schema:txn_table_schema ~key_ordinals:[ 0 ],
    Table_store.create ~name:"database_ledger_blocks" ~table_id:(-2)
      ~schema:blocks_table_schema ~key_ordinals:[ 0 ] )

let create ?(block_size = 100_000) ?wal_path ?signing_seed
    ?(commit_cost_us = 0.0) ~database_id ~db_create_time () =
  if block_size < 1 then invalid_arg "Database_ledger.create: block_size";
  let txn_table, blocks_table = make_tables () in
  {
    db_block_size = block_size;
    db_id = database_id;
    db_created = db_create_time;
    db_wal = Aries.Wal.create ?path:wal_path ();
    txn_table;
    blocks_table;
    queue = [];
    next_txn = 1;
    current_block = 0;
    current_count = 0;
    last_block_hash = "";
    last_commit = 0.;
    signing_seed;
    commit_cost_us;
    hash_cache = Hashtbl.create 64;
    hash_mu = Mutex.create ();
    receipt_cache = fresh_receipt_cache ();
  }

let attach_wal t path =
  (* Truncating the file must not restart the numbering: LSNs stay globally
     monotonic so a snapshot's recorded position lines up against whatever
     log file is found next to it after a crash. *)
  let first_lsn = Aries.Wal.last_lsn t.db_wal + 1 in
  Aries.Wal.close t.db_wal;
  t.db_wal <- Aries.Wal.create ~path ~first_lsn ()

let block_size t = t.db_block_size
let database_id t = t.db_id
let db_create_time t = t.db_created
let wal t = t.db_wal
let queue_length t = List.length t.queue
let last_commit_ts t = t.last_commit
let current_block_id t = t.current_block

(* ------------------------------------------------------------------ *)
(* Hashing: shared with the SQL verification path via Builtins.ledgerhash. *)

let ledgerhash_raw values =
  match Sqlexec.Builtins.ledgerhash values with
  | Value.String hex -> Hex.decode hex
  | _ -> assert false

let entry_hash (e : Types.txn_entry) =
  ledgerhash_raw
    [
      Value.Int e.txn_id;
      Value.Int e.block_id;
      Value.Int e.ordinal;
      Value.Float e.commit_ts;
      Value.String e.user;
      Value.String (Types.table_roots_to_string e.table_roots);
    ]

let cached_entry_hash t (e : Types.txn_entry) =
  let memo =
    Mutex.protect t.hash_mu (fun () -> Hashtbl.find_opt t.hash_cache e.txn_id)
  in
  match memo with Some h -> h | None -> entry_hash e

(* The commit leader feeds a published batch into the block accumulator:
   the batch entries' ledger hashes — the Merkle leaves a block close
   aggregates — are computed in one pass here, off the writer lock,
   instead of one-by-one when the block closes. *)
let accumulate_batch t batch_entries =
  let hashed =
    List.map
      (fun (e : Types.txn_entry) -> (e.txn_id, entry_hash e))
      batch_entries
  in
  Mutex.protect t.hash_mu (fun () ->
      List.iter (fun (id, h) -> Hashtbl.replace t.hash_cache id h) hashed)

let block_hash (b : Types.block) =
  ledgerhash_raw
    [
      Value.Int b.block_id;
      Value.String (Hex.encode b.prev_hash);
      Value.String (Hex.encode b.txn_root);
      Value.Int b.txn_count;
      Value.Float b.closed_ts;
    ]

(* ------------------------------------------------------------------ *)
(* Row <-> record conversions for the system tables *)

let entry_to_row (e : Types.txn_entry) : Row.t =
  [|
    Value.Int e.txn_id;
    Value.Int e.block_id;
    Value.Int e.ordinal;
    Value.Float e.commit_ts;
    Value.String e.user;
    Value.String (Types.table_roots_to_string e.table_roots);
  |]

let entry_of_row (row : Row.t) : Types.txn_entry =
  match row with
  | [|
      Value.Int txn_id;
      Value.Int block_id;
      Value.Int ordinal;
      Value.Float commit_ts;
      Value.String user;
      Value.String roots;
    |] ->
      let table_roots =
        match Types.table_roots_of_string roots with
        | Ok r -> r
        | Error e -> Types.errorf "corrupt table_roots column: %s" e
      in
      { txn_id; block_id; ordinal; commit_ts; user; table_roots }
  | _ -> Types.errorf "corrupt database_ledger_transactions row"

let block_to_row (b : Types.block) : Row.t =
  [|
    Value.Int b.block_id;
    Value.String (Hex.encode b.prev_hash);
    Value.String (Hex.encode b.txn_root);
    Value.Int b.txn_count;
    Value.Float b.closed_ts;
  |]

let block_of_row (row : Row.t) : Types.block =
  match row with
  | [|
      Value.Int block_id;
      Value.String prev_hash;
      Value.String txn_root;
      Value.Int txn_count;
      Value.Float closed_ts;
    |] ->
      {
        block_id;
        prev_hash = (if prev_hash = "" then "" else Hex.decode prev_hash);
        txn_root = Hex.decode txn_root;
        txn_count;
        closed_ts;
      }
  | _ -> Types.errorf "corrupt database_ledger_blocks row"

(* ------------------------------------------------------------------ *)

let next_txn_id t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  ignore (Aries.Wal.append t.db_wal (Aries.Log_record.Begin { txn_id = id }) : int);
  id

(* Staged transactions defer every WAL record — including Begin — to the
   commit leader, so nothing may touch the log here. *)
let stage_txn_id t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  id

let log_abort t ~txn_id =
  ignore (Aries.Wal.append t.db_wal (Aries.Log_record.Abort { txn_id }) : int)

let entries t =
  let flushed = List.map entry_of_row (Table_store.scan t.txn_table) in
  let all = flushed @ List.rev t.queue in
  List.sort
    (fun (a : Types.txn_entry) (b : Types.txn_entry) ->
      compare (a.block_id, a.ordinal) (b.block_id, b.ordinal))
    all

let entries_of_block t ~block_id =
  List.filter (fun (e : Types.txn_entry) -> e.block_id = block_id) (entries t)

let find_entry t ~txn_id =
  List.find_opt (fun (e : Types.txn_entry) -> e.txn_id = txn_id) (entries t)

let blocks t =
  List.map block_of_row (Table_store.scan t.blocks_table)
  |> List.sort (fun (a : Types.block) b -> compare a.block_id b.block_id)

let find_block t ~block_id =
  match Table_store.find t.blocks_table ~key:[| Value.Int block_id |] with
  | Some row -> Some (block_of_row row)
  | None -> None

(* Install a block's proof bundle, evicting the oldest resident blocks
   (and their txn-index rows) past capacity. First install wins when two
   snapshots race to build the same block. *)
let install_block_proofs t bp =
  let rc = t.receipt_cache in
  let block_id = bp.bp_block.block_id in
  Mutex.protect rc.rc_mu (fun () ->
      match Hashtbl.find_opt rc.rc_blocks block_id with
      | Some existing -> existing
      | None ->
          Hashtbl.replace rc.rc_blocks block_id bp;
          Queue.push block_id rc.rc_order;
          Array.iter
            (fun (e : Types.txn_entry) ->
              Hashtbl.replace rc.rc_txns e.txn_id block_id)
            bp.bp_entries;
          while Queue.length rc.rc_order > rc.rc_capacity do
            let old = Queue.pop rc.rc_order in
            match Hashtbl.find_opt rc.rc_blocks old with
            | None -> ()
            | Some obp ->
                Array.iter
                  (fun (e : Types.txn_entry) ->
                    Hashtbl.remove rc.rc_txns e.txn_id)
                  obp.bp_entries;
                Hashtbl.remove rc.rc_blocks old
          done;
          bp)

(* Cached proof bundle for a closed block; builds and installs it on a
   miss. [None] when the block is not closed (or does not exist). *)
let block_proofs_bundle t ~block_id =
  let rc = t.receipt_cache in
  let cached =
    Mutex.protect rc.rc_mu (fun () -> Hashtbl.find_opt rc.rc_blocks block_id)
  in
  match cached with
  | Some bp -> Some bp
  | None -> (
      match find_block t ~block_id with
      | None -> None
      | Some block ->
          let entries = Array.of_list (entries_of_block t ~block_id) in
          let tree =
            Merkle.Tree.of_leaves
              (List.map entry_hash (Array.to_list entries))
          in
          Some
            (install_block_proofs t
               {
                 bp_block = block;
                 bp_tree = tree;
                 bp_entries = entries;
                 bp_signature = None;
               }))

let block_proofs t ~block_id =
  match block_proofs_bundle t ~block_id with
  | Some bp -> Some (bp.bp_block, bp.bp_tree)
  | None -> None

(* Entry lookup through the receipt cache's txn index; falls back to the
   full (flushed ∪ queued) scan — after which the first receipt for the
   entry's block warms the index for its whole block. *)
let locate_txn t ~txn_id =
  let rc = t.receipt_cache in
  let hit =
    Mutex.protect rc.rc_mu (fun () ->
        match Hashtbl.find_opt rc.rc_txns txn_id with
        | None -> None
        | Some block_id -> (
            match Hashtbl.find_opt rc.rc_blocks block_id with
            | None -> None
            | Some bp ->
                Array.find_opt
                  (fun (e : Types.txn_entry) -> e.txn_id = txn_id)
                  bp.bp_entries))
  in
  match hit with Some _ as e -> e | None -> find_entry t ~txn_id

(* The in-memory half of a block close, shared by the logged, staged and
   replay paths. *)
let do_close_block t =
  if t.current_count > 0 then begin
    let block_id = t.current_block in
    let block_entries = entries_of_block t ~block_id in
    (* Asynchronous and single-threaded in the paper; here it runs inline,
       but the root over up to block_size (100K) entry hashes aggregates
       across domains when the block is large enough to pay for it. Entry
       hashes already accumulated by a commit leader are reused. Blocks at
       receipt scale also materialize their Merkle tree here, so receipts
       issued against the block share the subtree hashes just computed. *)
    let leaves = List.map (cached_entry_hash t) block_entries in
    let txn_count = List.length block_entries in
    let receipt_tree =
      if txn_count <= receipt_tree_inline_max then
        Some (Merkle.Tree.of_leaves leaves)
      else None
    in
    let txn_root =
      match receipt_tree with
      | Some tree -> Merkle.Tree.root tree
      | None -> Merkle.Parallel.root leaves
    in
    let closed_ts = t.last_commit in
    let block : Types.block =
      {
        block_id;
        prev_hash = t.last_block_hash;
        txn_root;
        txn_count;
        closed_ts;
      }
    in
    Table_store.insert t.blocks_table (block_to_row block);
    (match receipt_tree with
    | Some tree ->
        ignore
          (install_block_proofs t
             {
               bp_block = block;
               bp_tree = tree;
               bp_entries = Array.of_list block_entries;
               bp_signature = None;
             }
            : block_proofs)
    | None -> ());
    Mutex.protect t.hash_mu (fun () ->
        List.iter
          (fun (e : Types.txn_entry) -> Hashtbl.remove t.hash_cache e.txn_id)
          block_entries);
    t.last_block_hash <- block_hash block;
    t.current_block <- block_id + 1;
    t.current_count <- 0
  end

let close_current_block t =
  if t.current_count > 0 then begin
    ignore
      (Aries.Wal.append t.db_wal
         (Aries.Log_record.Block_close
            { block_id = t.current_block; closed_ts = t.last_commit })
        : int);
    do_close_block t
  end

(* Stage a block close: the in-memory effects happen now, the WAL record
   is returned for the caller to publish. *)
let stage_block_close t =
  if t.current_count > 0 then begin
    let record =
      Aries.Log_record.Block_close
        { block_id = t.current_block; closed_ts = t.last_commit }
    in
    do_close_block t;
    [ record ]
  end
  else []

let append_commit t ~txn_id ~commit_ts ~user ~table_roots =
  let entry : Types.txn_entry =
    {
      txn_id;
      block_id = t.current_block;
      ordinal = t.current_count;
      commit_ts;
      user;
      table_roots =
        List.sort (fun (a, _) (b, _) -> compare a b) table_roots;
    }
  in
  t.current_count <- t.current_count + 1;
  t.last_commit <- commit_ts;
  t.queue <- entry :: t.queue;
  ignore
    (Aries.Wal.append t.db_wal
       (Aries.Log_record.Commit
          {
            txn_id;
            commit_ts;
            user;
            block_id = entry.block_id;
            ordinal = entry.ordinal;
            table_roots = entry.table_roots;
          })
      : int);
  if t.current_count >= t.db_block_size then close_current_block t;
  if t.commit_cost_us > 0.0 then begin
    (* Busy-wait stand-in for a durable log flush / group commit. *)
    let deadline = Unix.gettimeofday () +. (t.commit_cost_us *. 1e-6) in
    while Unix.gettimeofday () < deadline do
      ()
    done
  end;
  entry

(* Validate-and-stage half of [append_commit] (group commit): every
   in-memory effect happens now — ordinal assignment, queue push, block
   close when the block fills — but the WAL records are returned instead
   of appended, so a commit leader can publish many commits under a
   single durability barrier. The records must reach the log, in order,
   before any other record is appended; until then the commit is
   acknowledged to nobody. *)
let stage_commit t ~txn_id ~commit_ts ~user ~table_roots =
  let entry : Types.txn_entry =
    {
      txn_id;
      block_id = t.current_block;
      ordinal = t.current_count;
      commit_ts;
      user;
      table_roots = List.sort (fun (a, _) (b, _) -> compare a b) table_roots;
    }
  in
  t.current_count <- t.current_count + 1;
  t.last_commit <- commit_ts;
  t.queue <- entry :: t.queue;
  let commit_record =
    Aries.Log_record.Commit
      {
        txn_id;
        commit_ts;
        user;
        block_id = entry.block_id;
        ordinal = entry.ordinal;
        table_roots = entry.table_roots;
      }
  in
  let close_records =
    if t.current_count >= t.db_block_size then stage_block_close t else []
  in
  (entry, commit_record :: close_records)

(* Replay support: enqueue a committed entry exactly as the original run
   did, without re-logging. *)
let replay_commit t (entry : Types.txn_entry) =
  t.queue <- entry :: t.queue;
  t.last_commit <- Float.max t.last_commit entry.commit_ts;
  t.current_block <- max t.current_block entry.block_id;
  if entry.block_id = t.current_block then
    t.current_count <- max t.current_count (entry.ordinal + 1);
  t.next_txn <- max t.next_txn (entry.txn_id + 1)

let note_txn_id t txn_id = t.next_txn <- max t.next_txn (txn_id + 1)

let replay_block_close t =
  (* Same computation as close_current_block, but without logging. *)
  do_close_block t

let checkpoint t =
  List.iter
    (fun e -> Table_store.insert t.txn_table (entry_to_row e))
    (List.rev t.queue);
  t.queue <- [];
  let lsn = Aries.Wal.last_lsn t.db_wal in
  ignore
    (Aries.Wal.append t.db_wal
       (Aries.Log_record.Checkpoint { flushed_upto_lsn = lsn })
      : int)

let generate_digest t ~time =
  close_current_block t;
  match List.rev (blocks t) with
  | [] -> None
  | latest :: _ ->
      Some
        {
          Digest.database_id = t.db_id;
          db_create_time = t.db_created;
          block_id = latest.block_id;
          block_hash = block_hash latest;
          digest_time = time;
          last_commit_ts = latest.closed_ts;
        }

let block_signature t ~block_id =
  match t.signing_seed with
  | None -> None
  | Some seed ->
      find_block t ~block_id
      |> Option.map (fun b ->
             let sk, pk =
               Lamport.generate
                 ~seed:(seed ^ ":block:" ^ string_of_int block_id)
             in
             (pk, Lamport.sign sk (block_hash b)))

(* Amortized variant: one key derivation + signing operation per block,
   memoized in the block's proof bundle and reused by every receipt for
   the block. Deterministic (seeded key, fixed block hash), so the result
   is byte-identical to {!block_signature}. *)
let cached_block_signature t ~block_id =
  match t.signing_seed with
  | None -> None
  | Some _ -> (
      match block_proofs_bundle t ~block_id with
      | None -> None
      | Some bp -> (
          let rc = t.receipt_cache in
          let memo = Mutex.protect rc.rc_mu (fun () -> bp.bp_signature) in
          match memo with
          | Some s -> s
          | None ->
              let s = block_signature t ~block_id in
              Mutex.protect rc.rc_mu (fun () -> bp.bp_signature <- Some s);
              s))

let transactions_rows t =
  List.map entry_to_row (entries t)

let blocks_rows t = Table_store.scan t.blocks_table

let raw_blocks_table t = t.blocks_table
let raw_transactions_table t = t.txn_table

let with_create_time t created = { t with db_created = created }

(* O(1) frozen view for lock-free readers. Captures the COW ledger tables
   plus the scalar block-chain state (queue, current block, last hash) by
   record copy. Shares the WAL handle — snapshot readers never touch it —
   and the entry-hash memo cache, which is mutex-guarded and keyed by
   txn id, so leader-side warming is visible (and correct) on both sides. *)
let snapshot t =
  {
    t with
    txn_table = Table_store.snapshot t.txn_table;
    blocks_table = Table_store.snapshot t.blocks_table;
  }

let unsafe_copy t =
  {
    t with
    db_wal = Aries.Wal.create ();
    txn_table = Table_store.deep_copy t.txn_table;
    blocks_table = Table_store.deep_copy t.blocks_table;
    hash_cache = Hashtbl.create 64;
    hash_mu = Mutex.create ();
    receipt_cache = fresh_receipt_cache ();
  }

let entry_to_json (e : Types.txn_entry) =
  Sjson.Obj
    [
      ("txn_id", Sjson.Int e.txn_id);
      ("block_id", Sjson.Int e.block_id);
      ("ordinal", Sjson.Int e.ordinal);
      ("commit_ts", Sjson.Float e.commit_ts);
      ("user", Sjson.String e.user);
      ("table_roots", Types.table_roots_to_json e.table_roots);
    ]

let entry_of_json json : Types.txn_entry =
  let num name =
    match Sjson.member name json with
    | Sjson.Float f -> f
    | Sjson.Int i -> float_of_int i
    | _ -> failwith name
  in
  {
    txn_id = Sjson.get_int (Sjson.member "txn_id" json);
    block_id = Sjson.get_int (Sjson.member "block_id" json);
    ordinal = Sjson.get_int (Sjson.member "ordinal" json);
    commit_ts = num "commit_ts";
    user = Sjson.get_string (Sjson.member "user" json);
    table_roots =
      (match
         Types.table_roots_of_string
           (Sjson.to_string (Sjson.member "table_roots" json))
       with
      | Ok r -> r
      | Error e -> failwith e);
  }

let to_snapshot t =
  let rows_json rows =
    Sjson.List
      (List.map
         (fun row -> Sjson.List (List.map Value.to_json (Array.to_list row)))
         rows)
  in
  Sjson.Obj
    [
      ("block_size", Sjson.Int t.db_block_size);
      ("database_id", Sjson.String t.db_id);
      ("db_create_time", Sjson.Float t.db_created);
      ("next_txn", Sjson.Int t.next_txn);
      ("current_block", Sjson.Int t.current_block);
      ("current_count", Sjson.Int t.current_count);
      ("last_block_hash", Sjson.String (Hex.encode t.last_block_hash));
      ("last_commit", Sjson.Float t.last_commit);
      ( "signing_seed",
        match t.signing_seed with
        | Some seed -> Sjson.String seed
        | None -> Sjson.Null );
      ("commit_cost_us", Sjson.Float t.commit_cost_us);
      ("queue", Sjson.List (List.rev_map entry_to_json t.queue));
      ("flushed", rows_json (Table_store.scan t.txn_table));
      ("blocks", rows_json (Table_store.scan t.blocks_table));
    ]

let of_snapshot ?wal_path json =
  try
    let num name =
      match Sjson.member name json with
      | Sjson.Float f -> f
      | Sjson.Int i -> float_of_int i
      | _ -> failwith name
    in
    let txn_table, blocks_table = make_tables () in
    let load_rows name schema store =
      List.iter
        (fun row_json ->
          let cells = Sjson.get_list row_json in
          let row =
            Array.of_list
              (List.mapi
                 (fun i cell ->
                   let col : Column.t = Schema.column schema i in
                   match Value.of_json col.dtype cell with
                   | Some v -> v
                   | None -> failwith (name ^ ": bad value"))
                 cells)
          in
          Table_store.insert store row)
        (Sjson.get_list (Sjson.member name json))
    in
    load_rows "flushed" txn_table_schema txn_table;
    load_rows "blocks" blocks_table_schema blocks_table;
    let queue =
      Sjson.get_list (Sjson.member "queue" json)
      |> List.map entry_of_json |> List.rev
    in
    Ok
      {
        db_block_size = Sjson.get_int (Sjson.member "block_size" json);
        db_id = Sjson.get_string (Sjson.member "database_id" json);
        db_created = num "db_create_time";
        db_wal = Aries.Wal.create ?path:wal_path ();
        txn_table;
        blocks_table;
        queue;
        next_txn = Sjson.get_int (Sjson.member "next_txn" json);
        current_block = Sjson.get_int (Sjson.member "current_block" json);
        current_count = Sjson.get_int (Sjson.member "current_count" json);
        last_block_hash =
          Hex.decode (Sjson.get_string (Sjson.member "last_block_hash" json));
        last_commit = num "last_commit";
        signing_seed =
          (match Sjson.member "signing_seed" json with
          | Sjson.String s -> Some s
          | _ -> None);
        commit_cost_us = num "commit_cost_us";
        hash_cache = Hashtbl.create 64;
        hash_mu = Mutex.create ();
        receipt_cache = fresh_receipt_cache ();
      }
  with
  | Failure e | Invalid_argument e -> Error ("malformed ledger snapshot: " ^ e)

let recover ?(block_size = 100_000) ?wal_path ?signing_seed ~database_id
    ~db_create_time ~(analysis : Aries.Recovery.analysis) ~flushed ~blocks ()
    =
  let txn_table, blocks_table = make_tables () in
  List.iter (Table_store.insert txn_table) flushed;
  List.iter (Table_store.insert blocks_table) blocks;
  let queue =
    List.rev_map
      (fun (c : Aries.Log_record.commit_info) ->
        {
          Types.txn_id = c.txn_id;
          block_id = c.block_id;
          ordinal = c.ordinal;
          commit_ts = c.commit_ts;
          user = c.user;
          table_roots = c.table_roots;
        })
      analysis.pending_commits
  in
  let closed =
    List.map block_of_row (Table_store.scan blocks_table)
    |> List.sort (fun (a : Types.block) b -> compare a.block_id b.block_id)
  in
  let last_block_hash, next_block =
    match List.rev closed with
    | [] -> ("", 0)
    | latest :: _ ->
        ( (let b : Types.block = latest in
           (* recompute rather than trust anything stored *)
           ledgerhash_raw
             [
               Value.Int b.block_id;
               Value.String (Hex.encode b.prev_hash);
               Value.String (Hex.encode b.txn_root);
               Value.Int b.txn_count;
               Value.Float b.closed_ts;
             ]),
          latest.block_id + 1 )
  in
  let all_entries =
    List.map entry_of_row (Table_store.scan txn_table) @ queue
  in
  let current_block = max next_block analysis.highest_block_id in
  let current_count =
    List.length
      (List.filter
         (fun (e : Types.txn_entry) -> e.block_id = current_block)
         all_entries)
  in
  let last_commit =
    List.fold_left
      (fun acc (e : Types.txn_entry) -> Float.max acc e.commit_ts)
      0. all_entries
  in
  {
    db_block_size = block_size;
    db_id = database_id;
    db_created = db_create_time;
    db_wal = Aries.Wal.create ?path:wal_path ();
    txn_table;
    blocks_table;
    queue;
    commit_cost_us = 0.0;
    next_txn = analysis.highest_txn_id + 1;
    current_block;
    current_count;
    last_block_hash;
    last_commit;
    signing_seed;
    hash_cache = Hashtbl.create 64;
    hash_mu = Mutex.create ();
    receipt_cache = fresh_receipt_cache ();
  }
