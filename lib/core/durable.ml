type t = {
  dd_dir : string;
  dd_db : Database.t;
  dd_in_doubt : Wal_replay.in_doubt list;
}

let snapshot_path dir = Filename.concat dir "snapshot.json"
let wal_path dir = Filename.concat dir "wal.jsonl"

let point_compact = "compact.truncate"

let () = Fault.register point_compact

let db t = t.dd_db
let dir t = t.dd_dir
let in_doubt t = t.dd_in_doubt

let persist_snapshot db_ path = Snapshot.save_to_file db_ ~path

let ( let* ) = Result.bind

(* Snapshot generations, newest first. [path].tmp that reads back complete
   and checksummed is a finished save whose rename was interrupted — the
   newest state there is; [path].prev is the retained previous generation. *)
let candidate_paths snap = [ snap; snap ^ ".tmp"; snap ^ ".prev" ]

(* A candidate generation is usable only if the log on disk can continue
   from it: its recorded position must reach (at least) the record just
   before the log's first entry. An older generation behind a truncated
   log has lost the records between its position and the log's start —
   replaying from it would silently drop committed work, so it is skipped
   (and recovery fails loudly if no generation bridges the gap). *)
let compatible ~min_lsn json =
  match min_lsn with
  | Some l -> Snapshot.wal_lsn json >= l - 1
  | None -> true

let pick_snapshot ~min_lsn candidates =
  List.find_map
    (fun path ->
      match Snapshot.read_file path with
      | Error _ -> None
      | Ok json -> if compatible ~min_lsn json then Some json else None)
    candidates

let open_dir ?block_size ?signing_seed ?clock ~dir ~name () =
  Fault.Fsutil.mkdir_p dir;
  let snap = snapshot_path dir in
  let wal = wal_path dir in
  let fail e = Error ("recovery of " ^ dir ^ " failed: " ^ e) in
  let* wal_records =
    if Sys.file_exists wal then
      match Aries.Wal.load wal with
      | Ok records -> Ok (Some records)
      | Error e -> fail e
    else Ok None
  in
  let min_lsn =
    match wal_records with Some ((l, _) :: _) -> Some l | _ -> None
  in
  let candidates = List.filter Sys.file_exists (candidate_paths snap) in
  let snapshot = pick_snapshot ~min_lsn candidates in
  let* recovered =
    match (wal_records, snapshot) with
    | (None | Some []), None ->
        if candidates = [] then
          (* First use: nothing durable exists yet. *)
          Ok
            (Database.create ?block_size ?signing_seed ?clock ~wal_path:wal
               ~name ())
        else
          fail
            (Printf.sprintf
               "no usable snapshot generation among [%s] and no log records \
                to replay"
               (String.concat "; " candidates))
    | Some records, snapshot -> (
        (* Snapshot (if any) plus the log tail; without a snapshot the log
           must start with the database-creation record. *)
        match Wal_replay.replay ?clock ?snapshot ~records () with
        | Ok db_ -> Ok db_
        | Error e -> fail e)
    | None, Some json -> (
        (* Compact-crash shape: a snapshot with no (or an empty) log. *)
        match Snapshot.load ?clock json with
        | Ok db_ -> Ok db_
        | Error e -> fail e)
  in
  let in_doubt =
    match wal_records with
    | Some records -> Wal_replay.in_doubt_of_records records
    | None -> []
  in
  (match (wal_records, snapshot) with
  | (None | Some []), None -> () (* fresh create: WAL already attached *)
  | _ ->
      (* Re-home onto durable storage: persist what we recovered (atomic,
         previous generation retained), then restart the log. Any stale
         .tmp left by a crashed save is consumed by this save's rename. *)
      persist_snapshot recovered snap;
      Database_ledger.attach_wal (Database.ledger recovered) wal;
      (* The snapshot withholds in-doubt prepared transactions (replay
         never applied them), so restarting the log would lose their
         votes. Re-append DATA + PREPARE so a second crash before the
         coordinator's decision still recovers them in-doubt. *)
      if in_doubt <> [] then begin
        let w = Database_ledger.wal (Database.ledger recovered) in
        List.iter
          (fun (d : Wal_replay.in_doubt) ->
            (match d.ops with
            | Sjson.List [] -> ()
            | ops ->
                ignore
                  (Aries.Wal.append w
                     (Aries.Log_record.Data { txn_id = d.txn_id; ops })
                    : int));
            ignore
              (Aries.Wal.append w
                 (Aries.Log_record.Prepare
                    {
                      gid = d.gid;
                      txn_id = d.txn_id;
                      user = d.user;
                      table_roots = d.table_roots;
                    })
                : int))
          in_doubt;
        Aries.Wal.sync w
      end);
  Ok { dd_dir = dir; dd_db = recovered; dd_in_doubt = in_doubt }

let checkpoint t =
  Database.checkpoint t.dd_db;
  persist_snapshot t.dd_db (snapshot_path t.dd_dir)

let compact t =
  checkpoint t;
  (* Crash window: new snapshot durable, old log still present. Harmless —
     the snapshot's wal_lsn covers every record in the log, so replay on
     reopen skips them all. LSNs continue across the truncation (see
     [Database_ledger.attach_wal]), so no second snapshot is needed to
     re-record the log position. *)
  Fault.trip point_compact;
  Database_ledger.attach_wal (Database.ledger t.dd_db) (wal_path t.dd_dir)
