(* Incremental ledger audit: verify only the blocks closed since the last
   trusted high-water mark, instead of rescanning the whole ledger.

   The mark is (block id, block hash) — exactly the anchor a digest
   carries — so an auditor that persists its mark across restarts resumes
   where it stopped: a full [Verifier.verify] becomes a one-time
   bootstrap, and steady-state auditing costs O(new blocks) per pass.

   Scope: this checks the block chain — entry hashes, per-block Merkle
   roots, counts, prev-hash links, and any supplied digest anchors. It
   deliberately does not re-verify table/history state against the
   entries (invariants 4-5); that is the bootstrap's job. Truncated
   ledgers (§5.2) need the full verifier's horizon handling and are out
   of scope here. *)

module Hex = Ledger_crypto.Hex

type mark = { m_block_id : int; m_block_hash : string }  (* raw 32 bytes *)

type outcome = {
  o_mark : mark option;
      (* the advanced high-water mark: the newest block verified clean.
         Unchanged from [from] when no new block closed; [None] only when
         starting from scratch on a ledger with no closed block. *)
  o_violations : Verifier.violation list;
  o_blocks_checked : int;  (* freshly verified this pass — never rescans *)
}

let ok o = o.o_violations = []

let mark_of_digest (d : Digest.t) =
  { m_block_id = d.block_id; m_block_hash = d.block_hash }

let mark_to_json m =
  Sjson.Obj
    [
      ("block_id", Sjson.Int m.m_block_id);
      ("block_hash", Sjson.String (Hex.encode m.m_block_hash));
    ]

let mark_of_json json =
  match (Sjson.member "block_id" json, Sjson.member "block_hash" json) with
  | Sjson.Int block_id, Sjson.String hex -> (
      match Hex.decode hex with
      | hash -> Ok { m_block_id = block_id; m_block_hash = hash }
      | exception _ -> Error "malformed audit mark: bad block_hash hex")
  | _ -> Error "malformed audit mark: missing block_id/block_hash"

let scan ?(digests = []) db ~from =
  let dbl = Database.ledger db in
  let all_blocks = Database_ledger.blocks dbl in
  let fresh =
    match from with
    | None -> all_blocks
    | Some m ->
        List.filter
          (fun (b : Types.block) -> b.block_id > m.m_block_id)
          all_blocks
  in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* Re-anchor the mark itself: the trusted block must still hash to the
     trusted value. O(1) tamper evidence for the newest verified block
     even when nothing new closed. *)
  (match from with
  | None -> ()
  | Some m -> (
      match Database_ledger.find_block dbl ~block_id:m.m_block_id with
      | None -> add (Verifier.Digest_block_missing { block_id = m.m_block_id })
      | Some b ->
          let computed = Database_ledger.block_hash b in
          if not (String.equal computed m.m_block_hash) then
            add
              (Verifier.Digest_mismatch
                 {
                   block_id = m.m_block_id;
                   expected = Hex.encode m.m_block_hash;
                   computed = Hex.encode computed;
                 })));
  (* One entries pass for the whole scan, bucketed by block: steady state
     audits a handful of new blocks, and re-sorting the ledger per block
     would turn O(new) into O(new * total). *)
  let by_block = Hashtbl.create 16 in
  if fresh <> [] then begin
    let floor =
      match from with Some m -> m.m_block_id | None -> min_int
    in
    List.iter
      (fun (e : Types.txn_entry) ->
        if e.block_id > floor then
          Hashtbl.replace by_block e.block_id
            (e
            :: (match Hashtbl.find_opt by_block e.block_id with
               | Some l -> l
               | None -> [])))
      (Database_ledger.entries dbl)
  end;
  let entries_of block_id =
    match Hashtbl.find_opt by_block block_id with
    | Some l -> List.rev l
    | None -> []
  in
  let prev =
    ref (Option.map (fun m -> (m.m_block_id, m.m_block_hash)) from)
  in
  let checked = ref 0 in
  let intact = ref (!violations = []) in
  List.iter
    (fun (b : Types.block) ->
      if !intact then begin
        (* Link to the trusted prefix first: everything past a broken or
           missing link is unanchored, so the scan pins the first bad
           block and stops advancing the mark. *)
        (match !prev with
        | None ->
            if b.block_id <> 0 then begin
              add (Verifier.Chain_gap { block_id = b.block_id; missing = 0 });
              intact := false
            end
            else if b.prev_hash <> "" then begin
              add
                (Verifier.Genesis_prev_not_null
                   { recorded = Hex.encode b.prev_hash });
              intact := false
            end
        | Some (prev_id, prev_hash) ->
            if b.block_id <> prev_id + 1 then begin
              add
                (Verifier.Chain_gap
                   { block_id = b.block_id; missing = prev_id + 1 });
              intact := false
            end
            else if not (String.equal b.prev_hash prev_hash) then begin
              add
                (Verifier.Chain_broken
                   {
                     block_id = b.block_id;
                     recorded_prev = Hex.encode b.prev_hash;
                     computed_prev = Hex.encode prev_hash;
                   });
              intact := false
            end);
        if !intact then begin
          let entries = entries_of b.block_id in
          let computed_root =
            Merkle.Parallel.root (List.map Database_ledger.entry_hash entries)
          in
          let actual = List.length entries in
          if not (String.equal computed_root b.txn_root) then begin
            add
              (Verifier.Block_root_mismatch
                 {
                   block_id = b.block_id;
                   recorded = Hex.encode b.txn_root;
                   computed = Hex.encode computed_root;
                 });
            intact := false
          end
          else if b.txn_count <> actual then begin
            add
              (Verifier.Block_count_mismatch
                 { block_id = b.block_id; recorded = b.txn_count; actual });
            intact := false
          end
          else begin
            incr checked;
            prev := Some (b.block_id, Database_ledger.block_hash b)
          end
        end
      end)
    fresh;
  (* Digest anchors: any supplied digest must match the chain as stored.
     Point lookups, so re-checking the caller's pinned set is cheap. *)
  List.iter
    (fun (d : Digest.t) ->
      if not (String.equal d.database_id (Database_ledger.database_id dbl))
      then add (Verifier.Digest_foreign { database_id = d.database_id })
      else
        match Database_ledger.find_block dbl ~block_id:d.block_id with
        | None ->
            add (Verifier.Digest_block_missing { block_id = d.block_id })
        | Some b ->
            let computed = Database_ledger.block_hash b in
            if not (String.equal computed d.block_hash) then
              add
                (Verifier.Digest_mismatch
                   {
                     block_id = d.block_id;
                     expected = Hex.encode d.block_hash;
                     computed = Hex.encode computed;
                   }))
    digests;
  let final_mark =
    match !prev with
    | Some (block_id, block_hash) ->
        Some { m_block_id = block_id; m_block_hash = block_hash }
    | None -> None
  in
  {
    o_mark = final_mark;
    o_violations = List.rev !violations;
    o_blocks_checked = !checked;
  }

(* The first block a violation implicates — what an auditor reports as
   "tampering pinned to block N". *)
let pinned_block o =
  let block_of = function
    | Verifier.Digest_block_missing { block_id }
    | Verifier.Digest_mismatch { block_id; _ }
    | Verifier.Chain_gap { block_id; _ }
    | Verifier.Chain_broken { block_id; _ }
    | Verifier.Block_root_mismatch { block_id; _ }
    | Verifier.Block_count_mismatch { block_id; _ }
    | Verifier.Orphan_transaction { block_id; _ } ->
        Some block_id
    | Verifier.Genesis_prev_not_null _ -> Some 0
    | Verifier.Digest_foreign _ | Verifier.Table_root_mismatch _
    | Verifier.Orphan_row_version _ | Verifier.Index_mismatch _ ->
        None
  in
  List.fold_left
    (fun acc v ->
      match (acc, block_of v) with
      | None, b -> b
      | Some a, Some b -> Some (min a b)
      | Some a, None -> Some a)
    None o.o_violations
