module LR = Aries.Log_record

type t = {
  clock : unit -> float;
  mutable db : Database.t option;
  mutable last_lsn : Aries.Wal.lsn;
  mutable last_commit_ts : float;
  pending : (int, Sjson.t) Hashtbl.t;  (* txn_id -> buffered DATA payload *)
  mutable tail : Aries.Wal.Tail.cursor option;  (* file-feed resume point *)
  mutable counters_stale : bool;
      (* a structural DDL was applied; its meta-event rows (carrying
         primary-allocated event ids) arrive as ordinary data in the same
         transaction, so [next_meta_event] must be recomputed once that
         transaction commits — otherwise a snapshot of the replica
         disagrees with the primary's on the counter *)
}

let create ?(clock = Unix.gettimeofday) () =
  {
    clock;
    db = None;
    last_lsn = 0;
    last_commit_ts = 0.;
    pending = Hashtbl.create 16;
    tail = None;
    counters_stale = false;
  }

(* The replica's database never logs to its own WAL (records are applied
   via the replay paths, which do not re-log), so its in-memory log
   position stays at 0 unless kept in step here. Keeping it advanced to
   the replication position matters because [Snapshot.save] records that
   position as [wal_lsn] — it is what lets a persisted replica snapshot
   line up against the replica's durable log copy on restart, and against
   the promoted directory's recovery. *)
let advance_db_wal t =
  match t.db with
  | Some db ->
      Aries.Wal.advance_to (Database_ledger.wal (Database.ledger db)) t.last_lsn
  | None -> ()

let of_database ?(clock = Unix.gettimeofday) ~last_lsn db =
  let t =
    {
      clock;
      db = Some db;
      last_lsn;
      last_commit_ts = Database_ledger.last_commit_ts (Database.ledger db);
      pending = Hashtbl.create 16;
      tail = None;
      counters_stale = false;
    }
  in
  advance_db_wal t;
  t

let install_snapshot t db ~last_lsn =
  t.db <- Some db;
  t.last_lsn <- last_lsn;
  t.last_commit_ts <- Database_ledger.last_commit_ts (Database.ledger db);
  Hashtbl.reset t.pending;
  t.tail <- None;
  t.counters_stale <- false;
  advance_db_wal t

let database t = t.db
let replicated_upto t = t.last_commit_ts
let last_lsn t = t.last_lsn

let apply_record t record =
  match (record, t.db) with
  | LR.Ddl { payload }, None ->
      if Sjson.member "ddl" payload = Sjson.String "create_database" then begin
        t.db <- Some (Wal_replay.shell_of_header ~clock:t.clock payload);
        Ok ()
      end
      else Error "replica stream does not start with a creation record"
  | _, None -> Error "replica has no database yet"
  | LR.Ddl { payload }, Some db ->
      if Sjson.member "ddl" payload = Sjson.String "create_database" then Ok ()
      else begin
        t.counters_stale <- true;
        Database.apply_structural_ddl db payload
      end
  | LR.Data { txn_id; ops }, Some _ ->
      (* Buffer until the COMMIT arrives: the replica never exposes
         uncommitted state. *)
      Hashtbl.replace t.pending txn_id ops;
      Ok ()
  | LR.Commit c, Some db ->
      let result =
        match Hashtbl.find_opt t.pending c.LR.txn_id with
        | Some ops -> Wal_replay.apply_committed_ops db ~txn_id:c.LR.txn_id ops
        | None -> Ok ()
      in
      Hashtbl.remove t.pending c.LR.txn_id;
      (match result with
      | Ok () ->
          Database_ledger.replay_commit (Database.ledger db)
            {
              Types.txn_id = c.LR.txn_id;
              block_id = c.LR.block_id;
              ordinal = c.LR.ordinal;
              commit_ts = c.LR.commit_ts;
              user = c.LR.user;
              table_roots = c.LR.table_roots;
            };
          t.last_commit_ts <- Float.max t.last_commit_ts c.LR.commit_ts;
          if t.counters_stale then begin
            Database.refresh_counters db;
            t.counters_stale <- false
          end;
          Ok ()
      | Error _ as e -> e)
  | LR.Abort { txn_id }, Some db ->
      Hashtbl.remove t.pending txn_id;
      Database_ledger.note_txn_id (Database.ledger db) txn_id;
      Ok ()
  | LR.Begin { txn_id }, Some db ->
      Database_ledger.note_txn_id (Database.ledger db) txn_id;
      Ok ()
  | LR.Prepare { txn_id; _ }, Some db ->
      (* The DATA stays buffered until the coordinator's decision ships
         as a COMMIT or ABORT record; the replica exposes nothing
         in-doubt. *)
      Database_ledger.note_txn_id (Database.ledger db) txn_id;
      Ok ()
  | LR.Block_close _, Some db ->
      Database_ledger.replay_block_close (Database.ledger db);
      Ok ()
  | LR.Checkpoint _, Some db ->
      Database_ledger.checkpoint (Database.ledger db);
      Ok ()

let feed t records =
  let rec go = function
    | [] -> Ok ()
    | (lsn, _) :: rest when lsn <= t.last_lsn -> go rest
    | (lsn, record) :: rest -> (
        match apply_record t record with
        | Ok () ->
            t.last_lsn <- lsn;
            go rest
        | Error _ as e -> e)
  in
  let result = go records in
  advance_db_wal t;
  result

(* Incremental: a tail cursor per source file remembers how far it has
   read, so repeated calls against a growing log parse only the new
   records instead of re-loading the whole file every time. *)
let feed_from_file t ~wal_path =
  let cursor =
    match t.tail with
    | Some c when Aries.Wal.Tail.path c = wal_path -> c
    | _ ->
        let c = Aries.Wal.Tail.create ~after:t.last_lsn wal_path in
        t.tail <- Some c;
        c
  in
  match Aries.Wal.Tail.poll cursor with
  | Error e -> Error e
  | Ok records -> feed t records

let promote t =
  match t.db with
  | None -> Error "replica never received a creation record"
  | Some db ->
      Hashtbl.reset t.pending;
      Database.refresh_counters db;
      Ok db
