(** SQL DML over ledger (and regular) tables.

    Routes INSERT / UPDATE / DELETE statements through ledgered
    transactions, so data modified via SQL text gets exactly the same
    history capture and hashing as the programmatic {!Txn} API — ledger
    protection "without any application changes" (§2.1). *)

type result =
  | Rows of Sqlexec.Rel.t   (** a SELECT's result set *)
  | Affected of int         (** rows touched by a DML statement *)

val execute : ?txn:Txn.t -> Database.t -> user:string -> string -> result
(** Parse and run one statement. DML statements execute in their own
    transaction (one commit per statement, rolled back on error) unless
    [?txn] supplies an open transaction, in which case the statement's
    writes join it and a savepoint keeps a failing statement atomic
    without aborting the transaction (the server's session-level
    BEGIN/COMMIT path). Raises {!Sqlexec.Parser.Parse_error},
    {!Sqlexec.Executor.Exec_error} or {!Types.Ledger_error}. *)

val execute_statement :
  ?txn:Txn.t -> Database.t -> user:string -> Sqlexec.Ast.statement -> result
(** Pre-parsed variant. *)

val pp_result : Format.formatter -> result -> unit
