(** SQL DML over ledger (and regular) tables.

    Routes INSERT / UPDATE / DELETE statements through ledgered
    transactions, so data modified via SQL text gets exactly the same
    history capture and hashing as the programmatic {!Txn} API — ledger
    protection "without any application changes" (§2.1). *)

type result =
  | Rows of Sqlexec.Rel.t   (** a SELECT's result set *)
  | Affected of int         (** rows touched by a DML statement *)

val execute : ?txn:Txn.t -> Database.t -> user:string -> string -> result
(** Parse and run one statement. DML statements execute in their own
    transaction (one commit per statement, rolled back on error) unless
    [?txn] supplies an open transaction, in which case the statement's
    writes join it and a savepoint keeps a failing statement atomic
    without aborting the transaction (the server's session-level
    BEGIN/COMMIT path). Raises {!Sqlexec.Parser.Parse_error},
    {!Sqlexec.Executor.Exec_error} or {!Types.Ledger_error}. *)

val execute_statement :
  ?txn:Txn.t -> Database.t -> user:string -> Sqlexec.Ast.statement -> result
(** Pre-parsed variant. *)

type staged = {
  staged_entry : Types.txn_entry;  (** the committed transaction's entry *)
  staged_records : Aries.Log_record.t list;
      (** its WAL records, in log order *)
}

val execute_statement_staged :
  Database.t ->
  user:string ->
  Sqlexec.Ast.statement ->
  result * staged option
(** Group commit: run an auto-commit statement but stop before the WAL
    publish. Every in-memory effect is applied (the statement's
    transaction is committed in the engine) and the WAL records are
    returned for a commit leader to publish in one batch; [None] when the
    statement has nothing to persist (SELECT). The caller must hold the
    engine's writer lock across the call and enqueue the records for
    publication before releasing it, so that batch order equals execution
    order; once staged, a publish failure must be treated as a crash. On
    error the transaction is rolled back (logging nothing) and the
    exception re-raised. *)

val pp_result : Format.formatter -> result -> unit
