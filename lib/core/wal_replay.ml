open Relation
module LR = Aries.Log_record
module Table_store = Storage.Table_store

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let committed_txns records =
  let set = Hashtbl.create 256 in
  List.iter
    (fun (_, record) ->
      match record with
      | LR.Commit c -> Hashtbl.replace set c.LR.txn_id ()
      | _ -> ())
    records;
  set

(* A PREPARE whose txn_id has no later COMMIT or ABORT is in-doubt: the
   shard voted yes and crashed before learning the coordinator's decision.
   Replay withholds its DATA (the committed-txns filter already does), and
   the server must hold the write lock until the decision arrives. The
   redo payload rides along so a later decide-commit can apply it. *)
type in_doubt = {
  gid : string;
  txn_id : int;
  user : string;
  table_roots : (int * string) list;
  ops : Sjson.t;
}

let in_doubt_of_records records =
  let decided = Hashtbl.create 16 in
  List.iter
    (fun (_, record) ->
      match record with
      | LR.Commit c -> Hashtbl.replace decided c.LR.txn_id ()
      | LR.Abort { txn_id } -> Hashtbl.replace decided txn_id ()
      | _ -> ())
    records;
  let data = Hashtbl.create 16 in
  List.iter
    (fun (_, record) ->
      match record with
      | LR.Data { txn_id; ops = Sjson.List items } ->
          let prev =
            try Hashtbl.find data txn_id with Not_found -> []
          in
          Hashtbl.replace data txn_id (prev @ items)
      | _ -> ())
    records;
  List.filter_map
    (fun (_, record) ->
      match record with
      | LR.Prepare { gid; txn_id; user; table_roots }
        when not (Hashtbl.mem decided txn_id) ->
          let items = try Hashtbl.find data txn_id with Not_found -> [] in
          Some { gid; txn_id; user; table_roots; ops = Sjson.List items }
      | _ -> None)
    records

let decode_row json =
  match json with
  | Sjson.List cells ->
      let values = List.map Value.of_tagged_json cells in
      if List.for_all Option.is_some values then
        Ok (Array.of_list (List.map Option.get values))
      else Error "bad value in redo row"
  | _ -> Error "redo row is not a list"

let apply_op db ~txn_id op =
  let int name = Sjson.get_int (Sjson.member name op) in
  let* table =
    match Database.table_by_id db (int "tid") with
    | Some t -> Ok t
    | None -> err "redo references unknown table %d" (int "tid")
  in
  match (Sjson.member "op" op, table) with
  | Sjson.String "li", `L lt ->
      let* row = decode_row (Sjson.member "row" op) in
      ignore
        (Ledger_table.insert_version lt ~txn_id ~seq:(int "seq") row
          : Row.t * string);
      Ok ()
  | Sjson.String "ld", `L lt ->
      let* key = decode_row (Sjson.member "key" op) in
      ignore
        (Ledger_table.delete_version lt ~txn_id ~seq:(int "seq") ~key
          : Row.t * string);
      Ok ()
  | Sjson.String "pi", `R store ->
      let* row = decode_row (Sjson.member "row" op) in
      Table_store.insert store row;
      Ok ()
  | Sjson.String "pu", `R store ->
      let* row = decode_row (Sjson.member "row" op) in
      Table_store.update store row;
      Ok ()
  | Sjson.String "pd", `R store ->
      let* key = decode_row (Sjson.member "key" op) in
      ignore (Table_store.delete store ~key : Row.t);
      Ok ()
  | Sjson.String tag, _ -> err "redo op %s against wrong table kind" tag
  | _ -> Error "redo op missing tag"

let shell_of_header ~clock payload =
  let str name = Sjson.get_string (Sjson.member name payload) in
  let created =
    match Sjson.member "created" payload with
    | Sjson.Float f -> f
    | Sjson.Int i -> float_of_int i
    | _ -> failwith "create_database record missing create time"
  in
  let block_size = Sjson.get_int (Sjson.member "block_size" payload) in
  let signing_seed =
    match Sjson.member "signing_seed" payload with
    | Sjson.String s -> Some s
    | _ -> None
  in
  (* The database id is a deterministic hash of (name, create time), so
     creating a shell with a clock pinned to the original create time
     reproduces the identity; then re-home it onto the caller's clock. *)
  let shell =
    Database.create ~block_size ?signing_seed
      ~clock:(fun () -> created)
      ~name:(str "name") ()
  in
  Database.assemble ~clock (Database.expose shell)

let apply_committed_ops db ~txn_id ops =
  match ops with
  | Sjson.List items ->
      List.fold_left
        (fun acc op ->
          let* () = acc in
          apply_op db ~txn_id op)
        (Ok ()) items
  | _ -> Error "malformed redo payload"

let replay ?(clock = Unix.gettimeofday) ?snapshot ~records () =
  try
    let committed = committed_txns records in
    let* start_lsn, db =
      match snapshot with
      | Some json ->
          let* db =
            match Snapshot.load ~clock json with
            | Ok db -> Ok db
            | Error e -> Error e
          in
          Ok (Snapshot.wal_lsn json, db)
      | None -> (
          match records with
          | (lsn, LR.Ddl { payload })
            :: _
            when Sjson.member "ddl" payload = Sjson.String "create_database"
            ->
              Ok (lsn, shell_of_header ~clock payload)
          | _ ->
              Error
                "log does not start with a database-creation record and no \
                 snapshot was given")
    in
    let dbl = Database.ledger db in
    let rec go = function
      | [] -> Ok ()
      | (lsn, _) :: rest when lsn <= start_lsn -> go rest
      | (_, record) :: rest ->
          let* () =
            match record with
            | LR.Ddl { payload } -> Database.apply_structural_ddl db payload
            | LR.Data { txn_id; ops } ->
                if Hashtbl.mem committed txn_id then
                  apply_committed_ops db ~txn_id ops
                else Ok () (* uncommitted tail: atomicity across the crash *)
            | LR.Commit c ->
                Database_ledger.replay_commit dbl
                  {
                    Types.txn_id = c.LR.txn_id;
                    block_id = c.LR.block_id;
                    ordinal = c.LR.ordinal;
                    commit_ts = c.LR.commit_ts;
                    user = c.LR.user;
                    table_roots = c.LR.table_roots;
                  };
                Ok ()
            | LR.Begin { txn_id }
            | LR.Abort { txn_id }
            | LR.Prepare { txn_id; _ } ->
                Database_ledger.note_txn_id dbl txn_id;
                Ok ()
            | LR.Block_close _ ->
                Database_ledger.replay_block_close dbl;
                Ok ()
            | LR.Checkpoint _ ->
                Database_ledger.checkpoint dbl;
                Ok ()
          in
          go rest
    in
    let* () = go records in
    Database.refresh_counters db;
    (* The recovered database's in-memory WAL must continue the durable
       numbering, not restart it: a snapshot taken later records a wal_lsn
       that has to line up against the log file on disk. *)
    let wal = Database_ledger.wal dbl in
    Aries.Wal.advance_to wal start_lsn;
    List.iter (fun (lsn, _) -> Aries.Wal.advance_to wal lsn) records;
    Ok db
  with
  | Failure e | Invalid_argument e -> Error ("replay failed: " ^ e)
  | Types.Ledger_error e -> Error ("replay failed: " ^ e)
  | Table_store.Duplicate_key e -> Error ("replay failed: duplicate key " ^ e)
  | Table_store.Not_found_key e -> Error ("replay failed: missing key " ^ e)

let replay_file ?clock ?snapshot_path ~wal_path () =
  let* records = Aries.Wal.load wal_path in
  let* snapshot =
    match snapshot_path with
    | None -> Ok None
    | Some path -> Result.map Option.some (Snapshot.read_file path)
  in
  replay ?clock ?snapshot ~records ()
