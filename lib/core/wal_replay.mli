(** Full database recovery by redo-log replay (paper §3.3.2, completed).

    Every committed transaction's row operations and every structural
    change are logged ahead of commit, so a crashed database is rebuilt
    from its WAL alone — or from the latest snapshot plus the WAL tail,
    the classic checkpoint + redo architecture. Replay reproduces the
    *identical* ledger: the same row versions with the same (transaction,
    sequence) stamps, the same transaction entries, the same block
    boundaries (block closes are logged), hence the same hashes — old
    digests verify the recovered database.

    Two deliberate properties:
    - Uncommitted tails (a DATA record without its COMMIT) are discarded,
      giving transaction atomicity across crashes.
    - Raw tampering bypasses the WAL by definition, so replay resurrects
      the *untampered* state — a WAL-based variant of the §3.7 recovery
      from tampering.

    Limitation: ledger truncation (§5.2) compacts history outside the
    transaction path; take a fresh snapshot after truncating (the WAL
    before a truncation no longer reproduces the post-truncation state). *)

type in_doubt = {
  gid : string;
  txn_id : int;
  user : string;
  table_roots : (int * string) list;
  ops : Sjson.t;
}
(** A PREPARE with no later COMMIT/ABORT for its txn_id: the shard voted
    yes in a two-phase commit and crashed before the decision. The redo
    payload ([ops]) rides along so decide-commit can apply it. *)

val in_doubt_of_records :
  (Aries.Wal.lsn * Aries.Log_record.t) list -> in_doubt list
(** In-doubt prepared transactions of a log, in log order. Their effects
    are withheld by {!replay}; the caller must block writes until each is
    resolved by the coordinator. *)

val replay :
  ?clock:(unit -> float) ->
  ?snapshot:Sjson.t ->
  records:(Aries.Wal.lsn * Aries.Log_record.t) list ->
  unit ->
  (Database.t, string) result
(** Rebuild a database. Without [snapshot], the log must start with the
    database's creation record; with it, replay resumes from the snapshot's
    recorded WAL position. *)

val replay_file :
  ?clock:(unit -> float) ->
  ?snapshot_path:string ->
  wal_path:string ->
  unit ->
  (Database.t, string) result

(** {1 Streaming building blocks (used by {!Replica})} *)

val apply_committed_ops :
  Database.t -> txn_id:int -> Sjson.t -> (unit, string) result
(** Apply one DATA payload (a JSON list of row operations) for a
    transaction known to be committed. *)

val shell_of_header : clock:(unit -> float) -> Sjson.t -> Database.t
(** Reconstruct the empty database shell from a creation record's payload.
    Raises [Failure] on a malformed payload. *)
