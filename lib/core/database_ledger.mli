(** The Database Ledger (paper §2.2, §3.3): a blockchain over transaction
    entries, physically stored in two system tables.

    Commit entries are first appended to an in-memory queue (mirrored by the
    COMMIT WAL record, §3.3.2) and flushed to the
    "database_ledger_transactions" system table at checkpoints. A block
    closes when it reaches [block_size] transactions or when a digest is
    generated, whichever comes first; closing computes the Merkle root over
    the block's entry hashes and chains it to the previous block's hash. *)

type t

val create :
  ?block_size:int ->
  ?wal_path:string ->
  ?signing_seed:string ->
  ?commit_cost_us:float ->
  database_id:string ->
  db_create_time:float ->
  unit ->
  t
(** [block_size] defaults to 100_000 (the paper's block size).
    [signing_seed], when given, enables per-block Lamport signatures for
    receipts (§5.1). [commit_cost_us] (default 0) simulates the durable
    commit latency of a production engine — the paper measures ~125 us for
    SQL Server's commit path (§4.1.2) — so throughput comparisons can be
    calibrated against a realistic baseline. *)

val block_size : t -> int
val database_id : t -> string
val db_create_time : t -> float
val wal : t -> Aries.Wal.t

val attach_wal : t -> string -> unit
(** Close the current log and start a fresh file-backed one (truncating).
    Callers must persist a snapshot first — the old log's history is gone. *)

val next_txn_id : t -> int
(** Allocate a fresh transaction id (also logs BEGIN). *)

val stage_txn_id : t -> int
(** Allocate a fresh transaction id without logging: staged (group-commit)
    transactions defer every WAL record, including BEGIN, to the commit
    leader. *)

val log_abort : t -> txn_id:int -> unit

val append_commit :
  t ->
  txn_id:int ->
  commit_ts:float ->
  user:string ->
  table_roots:(int * string) list ->
  Types.txn_entry
(** Assign the transaction to the current block, append its entry to the
    in-memory queue and write the COMMIT WAL record. Closes the block when
    it becomes full. *)

val stage_commit :
  t ->
  txn_id:int ->
  commit_ts:float ->
  user:string ->
  table_roots:(int * string) list ->
  Types.txn_entry * Aries.Log_record.t list
(** The validate-and-stage half of {!append_commit} (group commit): every
    in-memory effect happens now — ordinal assignment, queue push, block
    close when the block fills — but the WAL records (COMMIT, then
    BLOCK_CLOSE when the block filled) are returned instead of appended,
    so a commit leader can publish many staged commits under one
    durability barrier via {!Aries.Wal.append_batch}. The records must
    reach the log in order before anything else is appended; a publish
    failure is unrecoverable for this ledger instance (the staged state
    cannot be unwound) and must be treated as a crash. *)

val accumulate_batch : t -> Types.txn_entry list -> unit
(** Feed a published batch into the block accumulator: computes the
    entries' ledger hashes — the Merkle leaves of a future block close —
    in one pass so closing the block does not recompute them. Safe to call
    from the commit leader without the engine's writer lock; purely a
    cache, misses recompute. *)

val checkpoint : t -> unit
(** Flush queued entries to the transactions system table and log a
    CHECKPOINT record. *)

val close_current_block : t -> unit
(** Force-close the current block if it contains transactions. *)

val generate_digest : t -> time:float -> Digest.t option
(** Close the current block (if non-empty) and return a digest of the
    latest block; [None] when no transaction was ever committed. *)

val entry_hash : Types.txn_entry -> string
(** Raw 32-byte hash of a transaction entry — LEDGERHASH over (txn_id,
    block_id, ordinal, commit_ts, user, table_roots JSON), exactly what the
    verification queries recompute. *)

val block_hash : Types.block -> string
(** Raw hash of a block — LEDGERHASH over (block_id, prev_hash hex,
    txn_root hex, txn_count, closed_ts). *)

val blocks : t -> Types.block list
(** Closed blocks in block-id order, read back from the system table. *)

val find_block : t -> block_id:int -> Types.block option
(** Point lookup of a closed block by id. *)

val entries : t -> Types.txn_entry list
(** All transaction entries (flushed ∪ queued), in (block, ordinal) order. *)

val entries_of_block : t -> block_id:int -> Types.txn_entry list

val find_entry : t -> txn_id:int -> Types.txn_entry option

val queue_length : t -> int
val last_commit_ts : t -> float
val current_block_id : t -> int

val block_signature :
  t -> block_id:int -> (Ledger_crypto.Lamport.public_key * Ledger_crypto.Lamport.signature) option
(** Signature over the block's hash under the block's one-time key; [None]
    when the ledger has no signing seed or the block is not closed.
    Recomputes on every call — the uncached reference path. *)

(** {1 Receipt service caches (§5.1 at production rate)}

    A closed block is immutable, so its materialized Merkle tree,
    ordinal-indexed entries and one-time signature are computed once and
    shared by every receipt issued for the block. Blocks closed by the
    commit path at receipt scale (≤ 4096 entries) are cached eagerly at
    close, from the entry hashes the group-commit leader already warmed;
    anything else materializes lazily on the first receipt request. The
    cache is bounded (FIFO over whole blocks) and shared across
    record-copy snapshots, so receipts served from a published snapshot
    or a replica hit the same trees. *)

val block_proofs : t -> block_id:int -> (Types.block * Merkle.Tree.t) option
(** The cached block header and materialized Merkle tree over the block's
    entry hashes; builds and caches on a miss. [None] when the block is
    not closed. *)

val locate_txn : t -> txn_id:int -> Types.txn_entry option
(** {!find_entry} through the receipt cache's txn → block index; a miss
    falls back to the full scan. *)

val cached_block_signature :
  t -> block_id:int -> (Ledger_crypto.Lamport.public_key * Ledger_crypto.Lamport.signature) option
(** {!block_signature} amortized over the block: one signing operation,
    memoized in the block's proof bundle. Byte-identical results. *)

(** {1 System-table access (verification reads these through SQL)} *)

val transactions_table_columns : string list
val blocks_table_columns : string list

val transactions_rows : t -> Relation.Row.t list
(** Rows of "database_ledger_transactions" (flushed ∪ queued). *)

val blocks_rows : t -> Relation.Row.t list

(** {1 Raw tamper surface} *)

val raw_blocks_table : t -> Storage.Table_store.t
val raw_transactions_table : t -> Storage.Table_store.t
(** Direct access for the tamper toolkit; queued entries are not reachable
    here, matching the reality that an attacker edits storage, not the
    process's memory. *)

val with_create_time : t -> float -> t
(** Same ledger, different database create time — used when a restore
    starts a new incarnation (§3.6). *)

val snapshot : t -> t
(** O(1) frozen view for lock-free readers: COW captures of the system
    tables plus the scalar chain state. Shares the WAL handle (snapshot
    readers never touch it) and the mutex-guarded entry-hash memo cache.
    Read-only. *)

val unsafe_copy : t -> t
(** Deep copy for database backups. The copy gets a fresh in-memory WAL (a
    backup does not carry the live log). *)

(** {1 Replay support (used by {!Wal_replay})} *)

val replay_commit : t -> Types.txn_entry -> unit
(** Re-enqueue a committed entry during log replay without re-logging. *)

val note_txn_id : t -> int -> unit
(** Advance the transaction-id allocator past a replayed id. *)

val replay_block_close : t -> unit
(** Close the current block during replay without re-logging. *)

(** {1 Snapshot support} *)

val to_snapshot : t -> Sjson.t
(** Full internal state as JSON (includes the signing seed if any: snapshots
    are backups, not public artifacts). *)

val of_snapshot : ?wal_path:string -> Sjson.t -> (t, string) result
(** [wal_path] attaches a fresh file-backed log (truncating). *)

(** {1 Recovery} *)

val recover :
  ?block_size:int ->
  ?wal_path:string ->
  ?signing_seed:string ->
  database_id:string ->
  db_create_time:float ->
  analysis:Aries.Recovery.analysis ->
  flushed:Relation.Row.t list ->
  blocks:Relation.Row.t list ->
  unit ->
  t
(** Rebuild the ledger after a crash: [flushed]/[blocks] are the surviving
    system-table rows; [analysis] supplies the commits whose entries were
    still queued (paper §3.3.2, analysis phase). *)
