open Relation
module Ast = Sqlexec.Ast
module Executor = Sqlexec.Executor
module Table_store = Storage.Table_store

type result = Rows of Sqlexec.Rel.t | Affected of int

let err fmt = Printf.ksprintf (fun s -> raise (Executor.Exec_error s)) fmt

(* Evaluate an expression against one row of the target table by running a
   one-row probe query through the executor, so DML expressions get exactly
   the SELECT expression semantics (functions, 3VL, CASE, ...). *)
let eval_against db ~table_name ~columns ~row expr =
  let catalog = Database.catalog db in
  let probe_catalog =
    {
      Executor.lookup_table =
        (fun name ->
          if String.equal (String.lowercase_ascii name) "__dml_probe" then
            Some (columns, [ row ])
          else catalog.Executor.lookup_table name);
      lookup_table_as_of = catalog.Executor.lookup_table_as_of;
      functions = catalog.Executor.functions;
    }
  in
  let probe =
    Ast.select
      ~from:
        (Ast.Table
           { name = "__dml_probe"; alias = Some table_name; as_of = None })
      [ Ast.Expr (expr, Some "v") ]
  in
  match (Executor.execute probe_catalog probe).Sqlexec.Rel.rows with
  | [ out ] -> out.(0)
  | _ -> err "internal: single-row evaluation"

let const_value db expr =
  eval_against db ~table_name:"__const" ~columns:[] ~row:[||] expr

type target = Ledger of Ledger_table.t | Regular of Table_store.t

let find_target db name =
  match Database.find_ledger_table db name with
  | Some lt -> Ledger lt
  | None -> (
      match Database.regular_table db name with
      | store -> Regular store
      | exception Types.Ledger_error _ -> err "unknown table %s" name)

let column_names_of = function
  | Ledger lt ->
      let schema = Ledger_table.schema lt in
      List.map
        (fun i -> (Schema.column schema i).Column.name)
        (Ledger_table.user_ordinals lt)
  | Regular store ->
      List.map
        (fun (c : Column.t) -> c.name)
        (Schema.columns (Table_store.schema store))

let current_user_rows = function
  | Ledger lt ->
      List.map (Ledger_table.user_row lt) (Ledger_table.current_rows lt)
  | Regular store -> Table_store.scan store

(* Extract the primary key of a user row. For ledger tables the key ordinals
   index the stored row; map them back through the user-column ordinals. *)
let key_of target row =
  match target with
  | Ledger lt ->
      let schema = Ledger_table.schema lt in
      let user_ords = Ledger_table.user_ordinals lt in
      Table_store.key_ordinals (Ledger_table.main lt)
      |> List.map (fun stored_ord ->
             match
               List.mapi (fun i o -> (i, o)) user_ords
               |> List.find_opt (fun (_, o) -> o = stored_ord)
             with
             | Some (i, _) -> row.(i)
             | None ->
                 Types.errorf "key column %s is not a user column"
                   (Schema.column schema stored_ord).Column.name)
      |> Array.of_list
  | Regular store -> Table_store.primary_key store row

let filter_rows db ~table_name ~columns where rows =
  match where with
  | None -> rows
  | Some cond ->
      List.filter
        (fun row ->
          match eval_against db ~table_name ~columns ~row cond with
          | Value.Bool true -> true
          | _ -> false)
        rows

(* Point-lookup fast path: WHERE <pk> = <literal> on a single-column
   primary key resolves through the store's clustered B-tree instead of
   materialising and filtering every current row. Auto-commit DML from
   the server is dominated by exactly this shape, and the scan-and-probe
   fallback is O(table size) per statement. Both paths compare with
   [Value.compare] (the B-tree's key order and the executor's [=]), so
   the victim set is identical. *)
let eq_literal ~table_name where =
  let literal = function
    | Ast.Lit v -> Some v
    | Ast.Neg (Ast.Lit (Value.Int i)) -> Some (Value.Int (-i))
    | Ast.Neg (Ast.Lit (Value.Float f)) -> Some (Value.Float (-.f))
    | _ -> None
  in
  let table_ok = function
    | None -> true
    | Some t -> String.lowercase_ascii t = String.lowercase_ascii table_name
  in
  let accept ~table ~column e =
    if table_ok table then
      match literal e with
      | Some v when not (Value.is_null v) -> Some (column, v)
      | _ -> None
    else None
  in
  match where with
  | Some (Ast.Binop (Ast.Eq, Ast.Col { table; column }, e))
  | Some (Ast.Binop (Ast.Eq, e, Ast.Col { table; column })) ->
      accept ~table ~column e
  | _ -> None

let single_key_column store schema =
  match Table_store.key_ordinals store with
  | [ o ] -> Some (String.lowercase_ascii (Schema.column schema o).Column.name)
  | _ -> None

let point_lookup target ~table_name where =
  match eq_literal ~table_name where with
  | None -> None
  | Some (column, v) -> (
      let col = String.lowercase_ascii column in
      let store, schema, of_stored =
        match target with
        | Ledger lt ->
            (Ledger_table.main lt, Ledger_table.schema lt, Ledger_table.user_row lt)
        | Regular store -> (store, Table_store.schema store, Fun.id)
      in
      match single_key_column store schema with
      | Some key_col when key_col = col ->
          Some
            (match Table_store.find store ~key:[| v |] with
            | Some stored -> [ of_stored stored ]
            | None -> [])
      | _ -> None)

(* The same shortcut for the bare point SELECT the wire workloads issue:
   SELECT * FROM t WHERE <pk> = <literal>, no modifiers. Anything fancier
   falls through to the relational executor, as do the catalog's derived
   relations (__versions / __ledger_view / __history and the two
   database-ledger system tables), whose names would otherwise shadow a
   same-named base table here. The projection mirrors the catalog's:
   visible stored columns for ledger tables, the full schema for regular
   ones. *)
let catalog_special name =
  let k = String.lowercase_ascii name in
  let suffixed s =
    String.length k > String.length s
    && String.sub k (String.length k - String.length s) (String.length s) = s
  in
  k = "database_ledger_transactions"
  || k = "database_ledger_blocks"
  || List.exists suffixed [ "__versions"; "__ledger_view"; "__history"; "_ledger" ]

let select_point_lookup db (q : Ast.select) =
  match q with
  | {
   distinct = false;
   projections = [ Ast.Star ];
   from = Some (Ast.Table { name; alias; as_of = None });
   where = Some _;
   group_by = [];
   having = None;
   order_by = [];
   limit = None;
  }
    when not (catalog_special name) -> (
      match find_target db name with
      | exception Executor.Exec_error _ -> None
      | exception Types.Ledger_error _ -> None
      | target -> (
          let label = Option.value alias ~default:name in
          match eq_literal ~table_name:label q.where with
          | None -> None
          | Some (column, v) -> (
              let col = String.lowercase_ascii column in
              let store =
                match target with
                | Ledger lt -> Ledger_table.main lt
                | Regular store -> store
              in
              let schema = Table_store.schema store in
              match single_key_column store schema with
              | Some key_col when key_col = col ->
                  let stored = Table_store.find store ~key:[| v |] in
                  let names, rows =
                    match target with
                    | Ledger _ ->
                        let vis = Schema.visible_columns schema in
                        let ords = List.map fst vis in
                        ( List.map (fun (_, (c : Column.t)) -> c.name) vis,
                          match stored with
                          | Some r -> [ Row.project r ords ]
                          | None -> [] )
                    | Regular _ ->
                        ( List.map
                            (fun (c : Column.t) -> c.name)
                            (Schema.columns schema),
                          match stored with Some r -> [ r ] | None -> [] )
                  in
                  Some (Sqlexec.Rel.make ~alias:label names rows)
              | _ -> None)))
  | _ -> None

(* With [?txn] the statement runs inside that open (session-level)
   transaction instead of an auto-commit one; a savepoint keeps failed
   statements atomic without aborting the enclosing transaction. *)
let execute_statement ?txn db ~user statement =
  let run f =
    match txn with
    | None ->
        let (), _ = Database.with_txn db ~user f in
        ()
    | Some t ->
        let sp = Txn.savepoint t in
        (try f t
         with e ->
           Txn.rollback_to t sp;
           raise e)
  in
  match statement with
  | Ast.Select q ->
      Rows
        (match select_point_lookup db q with
        | Some rel -> rel
        | None -> Executor.execute (Database.catalog db) q)
  | Ast.Insert { table; columns; rows } ->
      let target = find_target db table in
      let table_columns = column_names_of target in
      let build_row values_exprs =
        let values = List.map (const_value db) values_exprs in
        match columns with
        | None ->
            if List.length values <> List.length table_columns then
              err "INSERT arity mismatch: table %s has %d columns" table
                (List.length table_columns);
            Array.of_list values
        | Some names ->
            if List.length names <> List.length values then
              err "INSERT column/value count mismatch";
            let assoc =
              List.map2 (fun n v -> (String.lowercase_ascii n, v)) names values
            in
            Array.of_list
              (List.map
                 (fun c ->
                   Option.value
                     (List.assoc_opt (String.lowercase_ascii c) assoc)
                     ~default:Value.Null)
                 table_columns)
      in
      let built = List.map build_row rows in
      run (fun txn ->
          List.iter
            (fun row ->
              match target with
              | Ledger lt -> Txn.insert txn lt row
              | Regular store -> Txn.plain_insert txn store row)
            built);
      Affected (List.length built)
  | Ast.Update { table; assignments; where } ->
      let target = find_target db table in
      let table_columns = column_names_of target in
      let resolved =
        List.map
          (fun (c, e) ->
            let key = String.lowercase_ascii c in
            let rec index i = function
              | [] -> err "no column %s in %s" c table
              | n :: _ when String.equal (String.lowercase_ascii n) key -> i
              | _ :: rest -> index (i + 1) rest
            in
            (index 0 table_columns, e))
          assignments
      in
      let victims =
        match point_lookup target ~table_name:table where with
        | Some rows -> rows
        | None ->
            filter_rows db ~table_name:table ~columns:table_columns where
              (current_user_rows target)
      in
      run (fun txn ->
          List.iter
            (fun row ->
              let key = key_of target row in
              let updated =
                List.fold_left
                  (fun acc (i, e) ->
                    Row.set acc i
                      (eval_against db ~table_name:table
                         ~columns:table_columns ~row e))
                  row resolved
              in
              match target with
              | Ledger lt -> Txn.update txn lt ~key updated
              | Regular store ->
                  let new_key = Table_store.primary_key store updated in
                  if Row.equal key new_key then
                    Txn.plain_update txn store updated
                  else begin
                    Txn.plain_delete txn store ~key;
                    Txn.plain_insert txn store updated
                  end)
            victims);
      Affected (List.length victims)
  | Ast.Delete { table; where } ->
      let target = find_target db table in
      let table_columns = column_names_of target in
      let victims =
        match point_lookup target ~table_name:table where with
        | Some rows -> rows
        | None ->
            filter_rows db ~table_name:table ~columns:table_columns where
              (current_user_rows target)
      in
      run (fun txn ->
          List.iter
            (fun row ->
              let key = key_of target row in
              match target with
              | Ledger lt -> Txn.delete txn lt ~key
              | Regular store -> Txn.plain_delete txn store ~key)
            victims);
      Affected (List.length victims)

type staged = {
  staged_entry : Types.txn_entry;
  staged_records : Aries.Log_record.t list;
}

(* Group commit: run an auto-commit statement but stop before the WAL
   publish. The statement executes in its own staged transaction — all
   in-memory effects are applied and the transaction is marked committed —
   and the WAL records come back for a commit leader to publish in one
   batch. [None] for statements with nothing to persist (SELECTs). The
   caller must hold the engine's writer lock across the call and must
   enqueue the records for publication before releasing it, so batch
   order equals execution order. *)
let execute_statement_staged db ~user statement =
  match statement with
  | Ast.Select _ -> (execute_statement db ~user statement, None)
  | _ -> (
      let txn = Database.begin_staged_txn db ~user in
      match execute_statement ~txn db ~user statement with
      | result ->
          let staged_entry, staged_records = Txn.stage_commit txn in
          (result, Some { staged_entry; staged_records })
      | exception e ->
          if Txn.is_active txn then Txn.rollback txn;
          raise e)

let execute ?txn db ~user text =
  execute_statement ?txn db ~user (Sqlexec.Parser.parse_statement text)

let pp_result fmt = function
  | Rows rel -> Sqlexec.Rel.pp fmt rel
  | Affected n -> Format.fprintf fmt "%d row(s) affected" n
