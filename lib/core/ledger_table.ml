open Relation
module Table_store = Storage.Table_store

type kind = Append_only | Updateable

type t = {
  mutable lt_name : string;
  lt_table_id : int;
  lt_kind : kind;
  main : Table_store.t;
  history : Table_store.t option;
  (* user_ordinals is on the per-row DML and scan paths; memoise it per
     schema value (schemas are immutable, changes install a new one). *)
  mutable ordinals_cache : (Schema.t * int list) option;
}

let create ~name ~table_id ~schema ~key_ordinals ~kind =
  let extended = System_columns.extend_schema schema in
  let main =
    Table_store.create ~name ~table_id ~schema:extended ~key_ordinals
  in
  let history =
    match kind with
    | Append_only -> None
    | Updateable ->
        (* History rows are keyed by their deleting (txn, seq) pair, which
           is globally unique and lets one user key accumulate many
           versions. *)
        let e_txn, e_seq =
          let _, _, a, b = System_columns.ordinals extended in
          (a, b)
        in
        Some
          (Table_store.create ~name:(name ^ "__history") ~table_id
             ~schema:extended
             ~key_ordinals:[ e_txn; e_seq ])
  in
  {
    lt_name = name;
    lt_table_id = table_id;
    lt_kind = kind;
    main;
    history;
    ordinals_cache = None;
  }

let name t = t.lt_name
let rename t new_name = t.lt_name <- new_name
let table_id t = t.lt_table_id
let kind t = t.lt_kind
let schema t = Table_store.schema t.main
let user_ordinals t =
  let schema = Table_store.schema t.main in
  match t.ordinals_cache with
  | Some (s, ords) when s == schema -> ords
  | _ ->
      let ords =
        Schema.columns schema
        |> List.mapi (fun i (c : Column.t) -> (i, c.name))
        |> List.filter (fun (_, n) -> not (List.mem n System_columns.names))
        |> List.map fst
      in
      t.ordinals_cache <- Some (schema, ords);
      ords

let user_arity t = List.length (user_ordinals t)

let main t = t.main
let history t = t.history
let row_count t = Table_store.row_count t.main

let history_count t =
  match t.history with Some h -> Table_store.row_count h | None -> 0

let hash_created ?ctx t row =
  let schema = schema t in
  let masked = System_columns.mask_end schema row in
  match ctx with
  | Some c -> Row_codec.hash_into c schema masked
  | None -> Row_codec.hash schema masked

let hash_deleted ?ctx t row =
  match ctx with
  | Some c -> Row_codec.hash_into c (schema t) row
  | None -> Row_codec.hash (schema t) row

let extend_user_row t user_row =
  let ordinals = user_ordinals t in
  if Array.length user_row <> List.length ordinals then
    invalid_arg
      (Printf.sprintf "%s: expected %d user values, got %d" t.lt_name
         (List.length ordinals) (Array.length user_row));
  let out = Array.make (Schema.arity (schema t)) Value.Null in
  List.iteri (fun i ord -> out.(ord) <- user_row.(i)) ordinals;
  out

let user_row t stored =
  (* Until a schema change interleaves columns, the user columns are the
     contiguous prefix before the four system columns — a blit, not a
     gather. Scans over ledger tables hit this per row. *)
  let ords = user_ordinals t in
  let n = List.length ords in
  let is_prefix =
    let rec go i = function
      | [] -> true
      | o :: rest -> o = i && go (i + 1) rest
    in
    go 0 ords
  in
  if is_prefix then Array.sub stored 0 n else Row.project stored ords

let insert_version ?ctx t ~txn_id ~seq user_row =
  let row =
    System_columns.set_start (schema t) (extend_user_row t user_row) ~txn_id
      ~seq
  in
  Table_store.insert t.main row;
  (row, hash_created ?ctx t row)

let delete_version ?ctx t ~txn_id ~seq ~key =
  match t.history with
  | None ->
      Types.errorf "%s is an append-only ledger table: deletes and updates are not allowed"
        t.lt_name
  | Some history ->
      let row = Table_store.delete t.main ~key in
      let row = System_columns.set_end (schema t) row ~txn_id ~seq in
      Table_store.insert history row;
      (row, hash_deleted ?ctx t row)

let find t ~key = Table_store.find t.main ~key
let current_rows t = Table_store.scan t.main

let history_rows t =
  match t.history with Some h -> Table_store.scan h | None -> []

let versions t =
  let schema = schema t in
  (* One scratch context for the whole scan: recomputing version hashes is
     the bulk of verification (invariant 4), and the streaming path keeps it
     allocation-free per row. *)
  let ctx = Ledger_crypto.Sha256.init () in
  let creation row =
    let txn, seq = System_columns.get_start schema row in
    {
      Types.v_txn_id = txn;
      v_seq = seq;
      v_op = Types.Insert;
      v_hash = hash_created ~ctx t row;
      v_row = row;
    }
  in
  let deletion row =
    match System_columns.get_end schema row with
    | None -> Types.errorf "%s: history row without deletion columns" t.lt_name
    | Some (txn, seq) ->
        {
          Types.v_txn_id = txn;
          v_seq = seq;
          v_op = Types.Delete;
          v_hash = hash_deleted ~ctx t row;
          v_row = row;
        }
  in
  let current = List.map creation (current_rows t) in
  let hist = history_rows t in
  current
  @ List.map creation hist
  @ List.map deletion hist

let undo_insert t ~key = ignore (Table_store.delete t.main ~key : Row.t)

let undo_delete t row =
  match t.history with
  | None -> Types.errorf "%s: no history table to undo a delete" t.lt_name
  | Some history ->
      let hkey = Table_store.primary_key history row in
      ignore (Table_store.delete history ~key:hkey : Row.t);
      let schema = schema t in
      let restored = System_columns.mask_end schema row in
      (* mask_end copies only when needed; ensure we do not share arrays *)
      let restored =
        if restored == row then Array.copy row else restored
      in
      Table_store.insert t.main restored

let unsafe_assemble ~name ~table_id ~kind ~main ~history =
  {
    lt_name = name;
    lt_table_id = table_id;
    lt_kind = kind;
    main;
    history;
    ordinals_cache = None;
  }

(* O(1) frozen view built on [Table_store.snapshot]. The record copy also
   detaches [ordinals_cache] so a memoization on either side never leaks
   into the other. *)
let snapshot t =
  {
    t with
    main = Table_store.snapshot t.main;
    history = Option.map Table_store.snapshot t.history;
  }

let unsafe_copy t =
  {
    lt_name = t.lt_name;
    lt_table_id = t.lt_table_id;
    lt_kind = t.lt_kind;
    main = Table_store.deep_copy t.main;
    history = Option.map Table_store.deep_copy t.history;
    ordinals_cache = None;
  }
