(** Durable on-disk databases: a directory holding a snapshot and the WAL.

    This packages the recovery machinery into the shape a production
    deployment uses — checkpoint images plus a redo log:

    - [open_dir] creates the database on first use, and on every later open
      recovers it from [snapshot.json] + the [wal.jsonl] tail, exactly as a
      restarted server would (§3.3.2). Pre-crash digests verify the
      recovered instance.
    - [checkpoint] persists a fresh snapshot; the WAL keeps growing and
      recovery replays only the tail past the snapshot.
    - [compact] persists a snapshot and truncates the WAL — bounded log
      growth at the cost of losing the ability to replay further back.

    Crash-safety: snapshots are written atomically (tmp + fsync + rename)
    with the previous generation retained as [snapshot.json.prev]; WAL
    records carry a CRC frame and commits are fsynced. [open_dir] falls
    back across snapshot generations — current, then a completed-but-
    unrenamed [.tmp], then [.prev] — skipping any that fail to read,
    checksum, or line up with the log's first LSN, and refuses loudly
    (rather than silently losing data) when no generation is usable. A
    crash between [compact]'s two steps leaves a snapshot covering the
    whole log; recovery then replays nothing. *)

type t

val open_dir :
  ?block_size:int ->
  ?signing_seed:string ->
  ?clock:(unit -> float) ->
  dir:string ->
  name:string ->
  unit ->
  (t, string) result
(** Open (recovering if state exists) or create the database in [dir]. *)

val db : t -> Database.t

val in_doubt : t -> Wal_replay.in_doubt list
(** Prepared-but-undecided transactions found in the log at open, in log
    order. Their effects are NOT in {!db}; the server must hold its write
    lock and refuse new writes until each is resolved by the coordinator
    (decide-commit re-applies the recorded redo, decide-abort logs ABORT).
    Their DATA + PREPARE records were re-appended to the restarted log, so
    a second crash still recovers them in-doubt. *)

val checkpoint : t -> unit
(** Flush the ledger queue and persist a snapshot. *)

val compact : t -> unit
(** {!checkpoint}, then restart the WAL from empty. *)

val dir : t -> string
val snapshot_path : string -> string
val wal_path : string -> string
