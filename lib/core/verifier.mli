(** Ledger verification (paper §2.3, §3.4).

    Recomputes every hash in the Database Ledger from the current state of
    the Ledger and History tables and compares against the supplied Database
    Digests. Any direct-to-storage tampering surfaces as a violation.

    The five invariants of §3.4.1 are checked exactly as §3.4.2 describes:
    invariants 1–4 run as SQL queries (OPENJSON over the digest array, LAG
    over the blocks table, MERKLETREEAGG/LEDGERHASH group-bys with outer
    joins) through the {!Sqlexec} engine; invariant 5 (non-clustered index
    equivalence) reads the index trees directly since indexes are not SQL-
    addressable relations in this engine. Ledger views are generated code
    here rather than catalog artifacts, so the paper's final view-definition
    check has no attack surface to cover and is omitted. *)

type violation =
  | Digest_block_missing of { block_id : int }
      (** a digest references a block absent from the blocks table *)
  | Digest_mismatch of { block_id : int; expected : string; computed : string }
      (** hex hashes; invariant 1 *)
  | Digest_foreign of { database_id : string }
      (** digest belongs to another database *)
  | Chain_gap of { block_id : int; missing : int }
      (** invariant 2: non-contiguous block ids *)
  | Chain_broken of { block_id : int; recorded_prev : string; computed_prev : string }
      (** invariant 2: prev-hash link does not match *)
  | Genesis_prev_not_null of { recorded : string }
  | Block_root_mismatch of { block_id : int; recorded : string; computed : string }
      (** invariant 3 *)
  | Block_count_mismatch of { block_id : int; recorded : int; actual : int }
  | Orphan_transaction of { txn_id : int; block_id : int }
      (** invariant 3: entry references a closed block that does not exist *)
  | Table_root_mismatch of { txn_id : int; table : string; recorded : string option; computed : string option }
      (** invariant 4; [None] = side absent *)
  | Orphan_row_version of { table : string; txn_id : int }
      (** invariant 4: row version references an unrecorded transaction *)
  | Index_mismatch of { table : string; index : string }
      (** invariant 5 *)

type report = {
  violations : violation list;
  blocks_checked : int;
  transactions_checked : int;
  versions_checked : int;
  verified_upto_block : int option;
      (** highest block covered by a supplied digest: data beyond it is
          consistency-checked but not cryptographically anchored (§3.4.1) *)
}

val ok : report -> bool

val verify :
  ?tables:string list -> ?jobs:int -> Database.t -> digests:Digest.t list -> report
(** Full verification. [tables] restricts invariants 4–5 to the named
    ledger tables (the paper's partial-verification option, §2.3).
    [jobs] runs the per-table checks (invariants 4–5, the bulk of the work)
    on that many domains in parallel — the counterpart of the paper's use of
    parallel query execution to shorten verification. It defaults to
    [Domain.recommended_domain_count ()], so verification uses the host's
    cores unless explicitly restricted. Within-block Merkle aggregation
    (invariant 3 over up to 100K entries per block) additionally
    parallelises through {!Merkle.Parallel} when blocks are large. *)

val verify_digest_chain :
  Database.t -> older:Digest.t -> newer:Digest.t -> (unit, violation list) result
(** The external check of §3.3.1 (requirement 3): confirm that [newer]
    derives from [older] by recomputing the block chain between them —
    detects forks at digest-generation time. *)

val violation_to_string : violation -> string
val pp_report : Format.formatter -> report -> unit
