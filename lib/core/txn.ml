open Relation
module Table_store = Storage.Table_store
module Sha256 = Ledger_crypto.Sha256

type undo_op =
  | Undo_ledger_insert of Ledger_table.t * Row.t  (* key *)
  | Undo_ledger_delete of Ledger_table.t * Row.t  (* moved history row *)
  | Undo_plain_insert of Table_store.t * Row.t    (* key *)
  | Undo_plain_update of Table_store.t * Row.t    (* previous row *)
  | Undo_plain_delete of Table_store.t * Row.t    (* deleted row *)

(* Redo is recorded as lightweight ops during DML (rows snapshotted by a
   single Array.copy) and serialized to JSON once, at commit — aborted
   transactions never pay for serialization, and committed ones build the
   tree in one pass instead of per operation. *)
type redo_op =
  | Redo_ledger_insert of { tid : int; seq : int; row : Row.t }
  | Redo_ledger_delete of { tid : int; seq : int; key : Row.t }
  | Redo_plain_insert of { tid : int; row : Row.t }
  | Redo_plain_update of { tid : int; row : Row.t }
  | Redo_plain_delete of { tid : int; key : Row.t }

type state = Active | Prepared of string (* gid *) | Committed | Aborted

type t = {
  txn_id : int;
  txn_user : string;
  ledger : Database_ledger.t;
  staged : bool;
      (* Group commit: a staged transaction writes nothing to the WAL
         itself — BEGIN, DATA and COMMIT are all returned by
         [stage_commit] for a commit leader to publish as one batch. *)
  clock : unit -> float;
  scratch : Sha256.t;  (* reusable row-hash context, one per transaction *)
  mutable seq : int;
  mutable trees : (int, Merkle.Streaming.t) Hashtbl.t;  (* table_id -> tree *)
  mutable undo : undo_op list;  (* newest first *)
  mutable undo_len : int;       (* length of [undo], kept incrementally *)
  mutable redo : redo_op list;  (* newest first; serialized at commit *)
  mutable state : state;
}

type savepoint = {
  sp_seq : int;
  sp_trees : (int, Merkle.Streaming.t) Hashtbl.t;  (* snapshot copy *)
  sp_undo_len : int;
  sp_redo : redo_op list;
}

let id t = t.txn_id
let user t = t.txn_user
let is_active t = t.state = Active
let operation_count t = t.seq

let make ~txn_id ~staged ~ledger ~user ~clock =
  {
    txn_id;
    txn_user = user;
    ledger;
    staged;
    clock;
    scratch = Sha256.init ();
    seq = 0;
    trees = Hashtbl.create 8;
    undo = [];
    undo_len = 0;
    redo = [];
    state = Active;
  }

let begin_txn ~ledger ~user ~clock =
  make ~txn_id:(Database_ledger.next_txn_id ledger) ~staged:false ~ledger
    ~user ~clock

let begin_staged_txn ~ledger ~user ~clock =
  make ~txn_id:(Database_ledger.stage_txn_id ledger) ~staged:true ~ledger
    ~user ~clock

let require_active t =
  match t.state with
  | Active -> ()
  | Prepared gid ->
      Types.errorf "transaction %d is prepared for %s and awaits a decision"
        t.txn_id gid
  | Committed -> Types.errorf "transaction %d already committed" t.txn_id
  | Aborted -> Types.errorf "transaction %d already aborted" t.txn_id

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let tagged_row row =
  Sjson.List (List.map Value.to_tagged_json (Array.to_list row))

let redo_to_json = function
  | Redo_ledger_insert { tid; seq; row } ->
      Sjson.Obj
        [
          ("op", Sjson.String "li");
          ("tid", Sjson.Int tid);
          ("seq", Sjson.Int seq);
          ("row", tagged_row row);
        ]
  | Redo_ledger_delete { tid; seq; key } ->
      Sjson.Obj
        [
          ("op", Sjson.String "ld");
          ("tid", Sjson.Int tid);
          ("seq", Sjson.Int seq);
          ("key", tagged_row key);
        ]
  | Redo_plain_insert { tid; row } ->
      Sjson.Obj
        [
          ("op", Sjson.String "pi");
          ("tid", Sjson.Int tid);
          ("row", tagged_row row);
        ]
  | Redo_plain_update { tid; row } ->
      Sjson.Obj
        [
          ("op", Sjson.String "pu");
          ("tid", Sjson.Int tid);
          ("row", tagged_row row);
        ]
  | Redo_plain_delete { tid; key } ->
      Sjson.Obj
        [
          ("op", Sjson.String "pd");
          ("tid", Sjson.Int tid);
          ("key", tagged_row key);
        ]

let log_redo t op = t.redo <- op :: t.redo

let push_undo t op =
  t.undo <- op :: t.undo;
  t.undo_len <- t.undo_len + 1

let add_leaf t table_id leaf =
  let tree =
    match Hashtbl.find_opt t.trees table_id with
    | Some tree -> tree
    | None -> Merkle.Streaming.empty
  in
  Hashtbl.replace t.trees table_id (Merkle.Streaming.add_leaf tree leaf)

let insert t lt user_row =
  require_active t;
  let seq = next_seq t in
  let stored, hash =
    Ledger_table.insert_version ~ctx:t.scratch lt ~txn_id:t.txn_id ~seq
      user_row
  in
  add_leaf t (Ledger_table.table_id lt) hash;
  log_redo t
    (Redo_ledger_insert
       {
         tid = Ledger_table.table_id lt;
         seq;
         row = Array.copy user_row;
       });
  push_undo t
    (Undo_ledger_insert (lt, Table_store.primary_key (Ledger_table.main lt) stored))

let delete t lt ~key =
  require_active t;
  let seq = next_seq t in
  let moved, hash =
    Ledger_table.delete_version ~ctx:t.scratch lt ~txn_id:t.txn_id ~seq ~key
  in
  add_leaf t (Ledger_table.table_id lt) hash;
  log_redo t
    (Redo_ledger_delete
       { tid = Ledger_table.table_id lt; seq; key = Array.copy key });
  push_undo t (Undo_ledger_delete (lt, moved))

let update t lt ~key new_user_row =
  require_active t;
  (* Hash order per §4.1.2: the version before the update, then after. *)
  delete t lt ~key;
  insert t lt new_user_row

let plain_insert t store row =
  require_active t;
  Table_store.insert store row;
  log_redo t
    (Redo_plain_insert
       { tid = Table_store.table_id store; row = Array.copy row });
  push_undo t (Undo_plain_insert (store, Table_store.primary_key store row))

let plain_update t store row =
  require_active t;
  let key = Table_store.primary_key store row in
  (match Table_store.find store ~key with
  | None ->
      raise
        (Table_store.Not_found_key (Table_store.name store))
  | Some old_row ->
      Table_store.update store row;
      log_redo t
        (Redo_plain_update
           { tid = Table_store.table_id store; row = Array.copy row });
      push_undo t (Undo_plain_update (store, old_row)))

let plain_delete t store ~key =
  require_active t;
  let old_row = Table_store.delete store ~key in
  log_redo t
    (Redo_plain_delete
       { tid = Table_store.table_id store; key = Array.copy key });
  push_undo t (Undo_plain_delete (store, old_row))

let apply_undo = function
  | Undo_ledger_insert (lt, key) -> Ledger_table.undo_insert lt ~key
  | Undo_ledger_delete (lt, moved) -> Ledger_table.undo_delete lt moved
  | Undo_plain_insert (store, key) ->
      ignore (Table_store.delete store ~key : Row.t)
  | Undo_plain_update (store, old_row) -> Table_store.update store old_row
  | Undo_plain_delete (store, old_row) -> Table_store.insert store old_row

let savepoint t =
  require_active t;
  {
    sp_seq = t.seq;
    (* Streaming trees are immutable values, so a shallow copy of the table
       is a full snapshot. *)
    sp_trees = Hashtbl.copy t.trees;
    sp_undo_len = t.undo_len;
    sp_redo = t.redo;
  }

let rollback_to t sp =
  require_active t;
  let excess = t.undo_len - sp.sp_undo_len in
  if excess < 0 then
    Types.errorf "savepoint is no longer valid (outer rollback occurred)";
  let rec drop n ops =
    if n = 0 then ops
    else
      match ops with
      | [] -> assert false
      | op :: rest ->
          apply_undo op;
          drop (n - 1) rest
  in
  t.undo <- drop excess t.undo;
  t.undo_len <- sp.sp_undo_len;
  (* Copy again so the savepoint survives repeated rollbacks. *)
  t.trees <- Hashtbl.copy sp.sp_trees;
  t.redo <- sp.sp_redo;
  t.seq <- sp.sp_seq

let rollback t =
  (* Aborting a prepared transaction is the coordinator's abort decision;
     the ABORT record below is the decision marker recovery looks for. *)
  (match t.state with Prepared _ -> () | _ -> require_active t);
  List.iter apply_undo t.undo;
  t.undo <- [];
  t.undo_len <- 0;
  t.redo <- [];
  Hashtbl.reset t.trees;
  t.state <- Aborted;
  (* A staged transaction never logged anything, so there is nothing to
     mark aborted in the WAL; recovery cannot encounter it. *)
  if not t.staged then Database_ledger.log_abort t.ledger ~txn_id:t.txn_id

let commit t =
  require_active t;
  let table_roots =
    Hashtbl.fold
      (fun tid tree acc -> (tid, Merkle.Streaming.root tree) :: acc)
      t.trees []
  in
  (* Log the transaction's logical redo before its COMMIT record, so replay
     sees the data of every committed transaction (write-ahead). The JSON is
     built here, once, from the lightweight op log. *)
  if t.redo <> [] then
    ignore
      (Aries.Wal.append
         (Database_ledger.wal t.ledger)
         (Aries.Log_record.Data
            {
              txn_id = t.txn_id;
              ops = Sjson.List (List.rev_map redo_to_json t.redo);
            })
        : int);
  let entry =
    Database_ledger.append_commit t.ledger ~txn_id:t.txn_id
      ~commit_ts:(t.clock ()) ~user:t.txn_user ~table_roots
  in
  t.state <- Committed;
  entry

(* Validate-and-stage half of [commit] for staged (group-commit)
   transactions: compute the table roots and build every WAL record —
   BEGIN, the logical redo, COMMIT and any block close — without touching
   the log. The in-memory ledger effects (ordinal assignment, queue push,
   block close) happen now, so the records must be published before any
   other record reaches the WAL, and a publish failure is a crash. *)
let stage_commit t =
  require_active t;
  if not t.staged then
    Types.errorf "transaction %d was not begun staged" t.txn_id;
  let table_roots =
    Hashtbl.fold
      (fun tid tree acc -> (tid, Merkle.Streaming.root tree) :: acc)
      t.trees []
  in
  let data_records =
    if t.redo = [] then []
    else
      [
        Aries.Log_record.Data
          {
            txn_id = t.txn_id;
            ops = Sjson.List (List.rev_map redo_to_json t.redo);
          };
      ]
  in
  let entry, ledger_records =
    Database_ledger.stage_commit t.ledger ~txn_id:t.txn_id
      ~commit_ts:(t.clock ()) ~user:t.txn_user ~table_roots
  in
  t.state <- Committed;
  ( entry,
    (Aries.Log_record.Begin { txn_id = t.txn_id } :: data_records)
    @ ledger_records )

(* ------------------------------------------------------------------ *)
(* Two-phase commit, participant side.

   [prepare] is the write-ahead half of [commit]: the logical redo and a
   PREPARE marker reach the WAL and are fsynced, but no COMMIT is
   appended and the in-memory effects stay in place — the caller must
   keep holding the write lock until the decision. [decide_commit] is
   then a normal ledger commit (the COMMIT record doubles as the durable
   decision marker, because replay only applies DATA for txn_ids that
   have one); [rollback] of a prepared transaction is the abort decision
   (its ABORT record is the marker). *)

let prepare t ~gid =
  require_active t;
  if t.staged then
    Types.errorf "transaction %d is staged and cannot be prepared" t.txn_id;
  let table_roots =
    Hashtbl.fold
      (fun tid tree acc -> (tid, Merkle.Streaming.root tree) :: acc)
      t.trees []
  in
  let wal = Database_ledger.wal t.ledger in
  if t.redo <> [] then
    ignore
      (Aries.Wal.append wal
         (Aries.Log_record.Data
            {
              txn_id = t.txn_id;
              ops = Sjson.List (List.rev_map redo_to_json t.redo);
            })
        : int);
  ignore
    (Aries.Wal.append wal
       (Aries.Log_record.Prepare
          { gid; txn_id = t.txn_id; user = t.txn_user; table_roots })
      : int);
  Aries.Wal.sync wal;
  t.state <- Prepared gid;
  table_roots

let prepared_gid t = match t.state with Prepared gid -> Some gid | _ -> None

let decide_commit t =
  match t.state with
  | Prepared _ ->
      let table_roots =
        Hashtbl.fold
          (fun tid tree acc -> (tid, Merkle.Streaming.root tree) :: acc)
          t.trees []
      in
      let entry =
        Database_ledger.append_commit t.ledger ~txn_id:t.txn_id
          ~commit_ts:(t.clock ()) ~user:t.txn_user ~table_roots
      in
      t.state <- Committed;
      entry
  | _ -> Types.errorf "transaction %d is not prepared" t.txn_id

let table_root t lt =
  match Hashtbl.find_opt t.trees (Ledger_table.table_id lt) with
  | Some tree -> Merkle.Streaming.root tree
  | None -> Merkle.Streaming.empty_root
