(** Incremental ledger audit: verify only blocks closed since the last
    trusted high-water mark.

    An auditor that persists its mark resumes where it stopped — a full
    {!Verifier.verify} becomes a one-time bootstrap and each subsequent
    pass costs O(new blocks): recompute entry hashes and the Merkle root
    of every newly closed block, chain it to the trusted prefix, and
    re-anchor the mark block itself. Block-level tampering yields the
    same {!Verifier.violation}s a full verify reports, pinned to the
    same block.

    Out of scope (bootstrap's job): table/history state against the
    entries (invariants 4–5), and truncated ledgers (§5.2). *)

type mark = { m_block_id : int; m_block_hash : string (** raw 32 bytes *) }
(** The trusted high-water mark: the newest block verified clean — the
    same anchor a {!Digest.t} carries. *)

type outcome = {
  o_mark : mark option;
      (** the advanced mark; equals [from] when nothing new closed, and
          stops at the last clean block when a violation is found *)
  o_violations : Verifier.violation list;
  o_blocks_checked : int;  (** blocks freshly verified — never rescans *)
}

val ok : outcome -> bool
val mark_of_digest : Digest.t -> mark
val mark_to_json : mark -> Sjson.t
val mark_of_json : Sjson.t -> (mark, string) result

val scan : ?digests:Digest.t list -> Database.t -> from:mark option -> outcome
(** Verify every closed block past [from] ([None] = from genesis), plus
    the [from] block's own hash and any supplied [digests] as anchors.
    Stops advancing the mark at the first violation, pinning the first
    bad block. *)

val pinned_block : outcome -> int option
(** The lowest block id any violation implicates. *)
