open Relation
module Table_store = Storage.Table_store
module Hex = Ledger_crypto.Hex

type table_kind = [ `Append_only | `Updateable | `Regular ]

type entry = L of Ledger_table.t | R of Table_store.t

type t = {
  db_name : string;
  db_id : string;
  created : float;
  clock : unit -> float;
  dbl : Database_ledger.t;
  mutable tables : entry list;  (* registration order *)
  mutable next_table_id : int;
  mutable next_meta_event : int;
  tables_meta : Ledger_table.t;
  columns_meta : Ledger_table.t;
}

let norm = String.lowercase_ascii

let name t = t.db_name
let database_id t = t.db_id
let create_time t = t.created
let now t = t.clock ()
let ledger t = t.dbl
let tables_meta t = t.tables_meta
let columns_meta t = t.columns_meta

(* ------------------------------------------------------------------ *)
(* Metadata system tables (Figure 6): append-only ledgers of DDL events. *)

let tables_meta_columns =
  [
    Column.make "event_id" Datatype.Bigint;
    Column.make "table_name" (Datatype.Varchar 256);
    Column.make "table_id" Datatype.Bigint;
    Column.make "operation" (Datatype.Varchar 16);
  ]

let columns_meta_columns =
  [
    Column.make "event_id" Datatype.Bigint;
    Column.make "table_id" Datatype.Bigint;
    Column.make "column_name" (Datatype.Varchar 256);
    Column.make "data_type" (Datatype.Varchar 64);
    Column.make "operation" (Datatype.Varchar 16);
  ]

let log_ddl dbl payload =
  ignore
    (Aries.Wal.append (Database_ledger.wal dbl)
       (Aries.Log_record.Ddl { payload = Sjson.Obj payload })
      : int)

let create ?(block_size = 100_000) ?wal_path ?signing_seed ?commit_cost_us
    ?(clock = Unix.gettimeofday) ~name () =
  let created = clock () in
  let db_id =
    Hex.encode
      (String.sub
         (Ledger_crypto.Sha256.digest_string
            (Printf.sprintf "db:%s:%.9f" name created))
         0 8)
  in
  let dbl =
    Database_ledger.create ~block_size ?wal_path ?signing_seed ?commit_cost_us
      ~database_id:db_id ~db_create_time:created ()
  in
  (* The log's header record: replay reconstructs the identical database
     shell (the id is a deterministic hash of name and create time). *)
  log_ddl dbl
    ([
       ("ddl", Sjson.String "create_database");
       ("name", Sjson.String name);
       ("created", Sjson.Float created);
       ("block_size", Sjson.Int block_size);
     ]
    @
    match signing_seed with
    | Some seed -> [ ("signing_seed", Sjson.String seed) ]
    | None -> []);
  let tables_meta =
    Ledger_table.create ~name:"ledger_tables_meta" ~table_id:(-10)
      ~schema:(Schema.make tables_meta_columns) ~key_ordinals:[ 0 ]
      ~kind:Ledger_table.Append_only
  in
  let columns_meta =
    Ledger_table.create ~name:"ledger_columns_meta" ~table_id:(-11)
      ~schema:(Schema.make columns_meta_columns) ~key_ordinals:[ 0 ]
      ~kind:Ledger_table.Append_only
  in
  {
    db_name = name;
    db_id;
    created;
    clock;
    dbl;
    tables = [ L tables_meta; L columns_meta ];
    next_table_id = 1;
    next_meta_event = 1;
    tables_meta;
    columns_meta;
  }

(* ------------------------------------------------------------------ *)
(* Lookup *)

let entry_name = function
  | L lt -> Ledger_table.name lt
  | R store -> Table_store.name store

let find_entry t name =
  List.find_opt (fun e -> String.equal (norm (entry_name e)) (norm name)) t.tables

let find_ledger_table t name =
  match find_entry t name with Some (L lt) -> Some lt | _ -> None

let ledger_table t name =
  match find_ledger_table t name with
  | Some lt -> lt
  | None -> Types.errorf "no ledger table named %s" name

let regular_table t name =
  match find_entry t name with
  | Some (R store) -> store
  | _ -> Types.errorf "no regular table named %s" name

let ledger_tables t =
  List.filter_map (function L lt -> Some lt | R _ -> None) t.tables

let is_meta t lt =
  Ledger_table.table_id lt = Ledger_table.table_id t.tables_meta
  || Ledger_table.table_id lt = Ledger_table.table_id t.columns_meta

let is_dropped lt =
  let name = Ledger_table.name lt in
  String.length name >= 15 && String.sub name 0 15 = "MS_DroppedTable"

let user_ledger_tables t =
  List.filter
    (fun lt -> (not (is_meta t lt)) && not (is_dropped lt))
    (ledger_tables t)

(* ------------------------------------------------------------------ *)
(* Transactions *)

let begin_txn t ~user = Txn.begin_txn ~ledger:t.dbl ~user ~clock:t.clock

let begin_staged_txn t ~user =
  Txn.begin_staged_txn ~ledger:t.dbl ~user ~clock:t.clock

let with_txn t ~user f =
  let txn = begin_txn t ~user in
  match f txn with
  | result ->
      let entry = Txn.commit txn in
      (result, entry)
  | exception e ->
      if Txn.is_active txn then Txn.rollback txn;
      raise e

(* ------------------------------------------------------------------ *)
(* DDL *)

let next_event t =
  let id = t.next_meta_event in
  t.next_meta_event <- id + 1;
  id

let record_table_event t txn ~table_name ~table_id ~operation =
  Txn.insert txn t.tables_meta
    [|
      Value.Int (next_event t);
      Value.String table_name;
      Value.Int table_id;
      Value.String operation;
    |]

let record_column_event t txn ~table_id ~column ~dtype ~operation =
  Txn.insert txn t.columns_meta
    [|
      Value.Int (next_event t);
      Value.Int table_id;
      Value.String column;
      Value.String (Datatype.to_string dtype);
      Value.String operation;
    |]

let check_fresh_name t name =
  if find_entry t name <> None then
    Types.errorf "a table named %s already exists" name

let key_ordinals_of schema key =
  List.map
    (fun col ->
      match Schema.ordinal schema col with
      | Some i -> i
      | None -> Types.errorf "key column %s not in schema" col)
    key

let create_ledger_table t ?(kind = `Updateable) ~name ~columns ~key () =
  check_fresh_name t name;
  let schema = Schema.make columns in
  let key_ordinals = key_ordinals_of schema key in
  let table_id = t.next_table_id in
  t.next_table_id <- table_id + 1;
  let kind =
    match kind with
    | `Append_only -> Ledger_table.Append_only
    | `Updateable -> Ledger_table.Updateable
  in
  let lt = Ledger_table.create ~name ~table_id ~schema ~key_ordinals ~kind in
  t.tables <- t.tables @ [ L lt ];
  log_ddl t.dbl
    [
      ("ddl", Sjson.String "create_ledger");
      ("name", Sjson.String name);
      ("table_id", Sjson.Int table_id);
      ( "kind",
        Sjson.String
          (match kind with
          | Ledger_table.Append_only -> "append_only"
          | Ledger_table.Updateable -> "updateable") );
      ("key", Sjson.List (List.map (fun i -> Sjson.Int i) key_ordinals));
      ("columns", Sjson.List (List.map Column.to_json columns));
    ];
  let (), _ =
    with_txn t ~user:"system" (fun txn ->
        record_table_event t txn ~table_name:name ~table_id
          ~operation:"CREATE";
        List.iter
          (fun (c : Column.t) ->
            record_column_event t txn ~table_id ~column:c.name ~dtype:c.dtype
              ~operation:"CREATE")
          columns)
  in
  lt

let create_regular_table t ~name ~columns ~key () =
  check_fresh_name t name;
  let schema = Schema.make columns in
  let key_ordinals = key_ordinals_of schema key in
  let table_id = t.next_table_id in
  t.next_table_id <- table_id + 1;
  let store = Table_store.create ~name ~table_id ~schema ~key_ordinals in
  t.tables <- t.tables @ [ R store ];
  log_ddl t.dbl
    [
      ("ddl", Sjson.String "create_regular");
      ("name", Sjson.String name);
      ("table_id", Sjson.Int table_id);
      ("key", Sjson.List (List.map (fun i -> Sjson.Int i) key_ordinals));
      ("columns", Sjson.List (List.map Column.to_json columns));
    ];
  store

let drop_table t ~name =
  match find_entry t name with
  | None -> Types.errorf "no table named %s" name
  | Some (R store) ->
      (* Regular tables are not ledgered; a drop simply removes them. *)
      log_ddl t.dbl
        [
          ("ddl", Sjson.String "remove_regular");
          ("table_id", Sjson.Int (Table_store.table_id store));
        ];
      t.tables <-
        List.filter
          (fun e ->
            match e with
            | R s -> s != store
            | L _ -> true)
          t.tables
  | Some (L lt) ->
      if is_meta t lt then Types.errorf "cannot drop a ledger system table";
      let table_id = Ledger_table.table_id lt in
      let new_name =
        Printf.sprintf "MS_DroppedTable_%s_%d" (Ledger_table.name lt) table_id
      in
      Ledger_table.rename lt new_name;
      log_ddl t.dbl
        [
          ("ddl", Sjson.String "rename_table");
          ("table_id", Sjson.Int table_id);
          ("new_name", Sjson.String new_name);
        ];
      let (), _ =
        with_txn t ~user:"system" (fun txn ->
            record_table_event t txn ~table_name:new_name ~table_id
              ~operation:"DROP")
      in
      ()

let set_both_schemas lt schema =
  Table_store.set_schema (Ledger_table.main lt) schema;
  match Ledger_table.history lt with
  | Some h -> Table_store.set_schema h schema
  | None -> ()

let add_column t ~table column =
  let lt = ledger_table t table in
  if not column.Column.nullable then
    Types.errorf
      "only nullable columns can be added to ledger table %s (§3.5.1)" table;
  let schema = Schema.add_column (Ledger_table.schema lt) column in
  let pad row = Array.append row [| Value.Null |] in
  Table_store.migrate (Ledger_table.main lt) ~schema ~f:pad;
  (match Ledger_table.history lt with
  | Some h -> Table_store.migrate h ~schema ~f:pad
  | None -> ());
  log_ddl t.dbl
    [
      ("ddl", Sjson.String "add_column");
      ("table_id", Sjson.Int (Ledger_table.table_id lt));
      ("column", Column.to_json column);
    ];
  let (), _ =
    with_txn t ~user:"system" (fun txn ->
        record_column_event t txn ~table_id:(Ledger_table.table_id lt)
          ~column:column.Column.name ~dtype:column.Column.dtype
          ~operation:"CREATE")
  in
  ()

let drop_column t ~table ~column =
  let lt = ledger_table t table in
  let schema = Ledger_table.schema lt in
  let col =
    match Schema.find schema column with
    | Some c -> c
    | None -> Types.errorf "no column %s in %s" column table
  in
  if List.mem column System_columns.names then
    Types.errorf "cannot drop a system column";
  set_both_schemas lt (Schema.hide_column schema column);
  log_ddl t.dbl
    [
      ("ddl", Sjson.String "hide_column");
      ("table_id", Sjson.Int (Ledger_table.table_id lt));
      ("column", Sjson.String column);
    ];
  let (), _ =
    with_txn t ~user:"system" (fun txn ->
        record_column_event t txn ~table_id:(Ledger_table.table_id lt)
          ~column ~dtype:col.Column.dtype ~operation:"DROP")
  in
  ()

let alter_column_type t ~table ~column dtype ~convert =
  let lt = ledger_table t table in
  let schema = Ledger_table.schema lt in
  let old_ord =
    match Schema.ordinal schema column with
    | Some i -> i
    | None -> Types.errorf "no column %s in %s" column table
  in
  let old_dtype = (Schema.column schema old_ord).Column.dtype in
  let main = Ledger_table.main lt in
  if List.mem old_ord (Table_store.key_ordinals main) then
    Types.errorf "cannot alter the type of key column %s" column;
  (* §3.5.3: drop the column (hide it under a mangled name), add it back
     with the new type, and repopulate through ledgered updates. *)
  let dropped_name =
    Printf.sprintf "%s__dropped_%d" column (Schema.arity schema)
  in
  let schema =
    Schema.hide_column
      (Schema.rename_column schema ~old_name:column ~new_name:dropped_name)
      dropped_name
  in
  let schema = Schema.add_column schema (Column.make ~nullable:true column dtype) in
  let pad row = Array.append row [| Value.Null |] in
  Table_store.migrate main ~schema ~f:pad;
  (match Ledger_table.history lt with
  | Some h -> Table_store.migrate h ~schema ~f:pad
  | None -> ());
  let table_id = Ledger_table.table_id lt in
  log_ddl t.dbl
    [
      ("ddl", Sjson.String "alter_column_schema");
      ("table_id", Sjson.Int table_id);
      ("column", Sjson.String column);
      ("new_type", Sjson.String (Datatype.to_string dtype));
    ];
  let new_user_pos =
    (* position of the new column among the user columns *)
    let ords = Ledger_table.user_ordinals lt in
    let new_ord = Schema.arity schema - 1 in
    let rec find i = function
      | [] -> Types.errorf "internal: new column not found"
      | o :: _ when o = new_ord -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 ords
  in
  let (), _ =
    with_txn t ~user:"system" (fun txn ->
        record_column_event t txn ~table_id ~column ~dtype:old_dtype
          ~operation:"DROP";
        record_column_event t txn ~table_id ~column ~dtype ~operation:"CREATE";
        List.iter
          (fun row ->
            let key = Table_store.primary_key main row in
            let user_view = Ledger_table.user_row lt row in
            let converted =
              Row.set user_view new_user_pos (convert row.(old_ord))
            in
            Txn.update txn lt ~key converted)
          (Ledger_table.current_rows lt))
  in
  ()

let create_index t ~table ~name ~columns =
  let store =
    match find_entry t table with
    | Some (L lt) -> Ledger_table.main lt
    | Some (R store) -> store
    | None -> Types.errorf "no table named %s" table
  in
  let schema = Table_store.schema store in
  let key_ordinals =
    List.map
      (fun col ->
        match Schema.ordinal schema col with
        | Some i -> i
        | None -> Types.errorf "no column %s in %s" col table)
      columns
  in
  Table_store.create_index store ~name ~key_ordinals;
  log_ddl t.dbl
    [
      ("ddl", Sjson.String "create_index");
      ("table_id", Sjson.Int (Table_store.table_id store));
      ("index", Sjson.String name);
      ("key", Sjson.List (List.map (fun i -> Sjson.Int i) key_ordinals));
    ]

let drop_index t ~table ~name =
  let store =
    match find_entry t table with
    | Some (L lt) -> Ledger_table.main lt
    | Some (R store) -> store
    | None -> Types.errorf "no table named %s" table
  in
  Table_store.drop_index store ~name;
  log_ddl t.dbl
    [
      ("ddl", Sjson.String "drop_index");
      ("table_id", Sjson.Int (Table_store.table_id store));
      ("index", Sjson.String name);
    ]

(* ------------------------------------------------------------------ *)
(* Digests / checkpoint *)

let generate_digest t = Database_ledger.generate_digest t.dbl ~time:(t.clock ())
let checkpoint t = Database_ledger.checkpoint t.dbl

(* ------------------------------------------------------------------ *)
(* SQL catalog *)

let visible_ordinals schema =
  List.map fst (Schema.visible_columns schema)

let visible_names schema =
  List.map (fun (_, (c : Column.t)) -> c.name) (Schema.visible_columns schema)

let versions_columns = [ "txn_id"; "seq"; "operation"; "row_hash" ]

let versions_rel lt =
  let schema = Ledger_table.schema lt in
  let vis = visible_ordinals schema in
  let names = versions_columns @ visible_names schema in
  let rows =
    List.map
      (fun (v : Types.version) ->
        Array.append
          [|
            Value.Int v.v_txn_id;
            Value.Int v.v_seq;
            Value.String (Types.operation_to_string v.v_op);
            Value.String (Hex.encode v.v_hash);
          |]
          (Row.project v.v_row vis))
      (Ledger_table.versions lt)
  in
  (names, rows)

let ledger_view_rel lt =
  let schema = Ledger_table.schema lt in
  let vis = visible_ordinals schema in
  let names = visible_names schema @ [ "operation"; "transaction_id" ] in
  let versions =
    List.sort
      (fun (a : Types.version) b -> compare (a.v_txn_id, a.v_seq) (b.v_txn_id, b.v_seq))
      (Ledger_table.versions lt)
  in
  let rows =
    List.map
      (fun (v : Types.version) ->
        Array.append (Row.project v.v_row vis)
          [|
            Value.String (Types.operation_to_string v.v_op);
            Value.Int v.v_txn_id;
          |])
      versions
  in
  (names, rows)

(* --- provenance (_ledger) views and temporal (AS OF) resolution --- *)

(* Provenance column names for the [<table>_ledger] view. A user column
   with the same name wins the bare spelling; the provenance column then
   grows a [ledger_] prefix (repeatedly, until unique), so the view
   always exposes both without shadowing. *)
let provenance_names user_names =
  let taken = List.map String.lowercase_ascii user_names in
  List.map
    (fun base ->
      let rec fresh n =
        if List.mem (String.lowercase_ascii n) taken then fresh ("ledger_" ^ n)
        else n
      in
      fresh base)
    [ "commit_time"; "principal_name"; "operation"; "txn_id"; "seq" ]

(* One row per row version, in commit order, each joined to its
   transaction entry: who wrote it (the authenticated principal), when
   it committed, and what the operation was. [?as_of] keeps only
   versions whose transaction committed at or before the timestamp.
   Versions of the open (uncommitted-to-an-entry) transaction set have
   no entry yet and are visible only to the current view, never to a
   temporal one. *)
let provenance_rel t ?as_of lt =
  let schema = Ledger_table.schema lt in
  let vis = visible_ordinals schema in
  let user_names = visible_names schema in
  let names = user_names @ provenance_names user_names in
  let versions =
    List.sort
      (fun (a : Types.version) b ->
        compare (a.v_txn_id, a.v_seq) (b.v_txn_id, b.v_seq))
      (Ledger_table.versions lt)
  in
  let rows =
    List.filter_map
      (fun (v : Types.version) ->
        match Database_ledger.find_entry t.dbl ~txn_id:v.v_txn_id with
        | None -> None
        | Some e -> (
            match as_of with
            | Some ts when e.Types.commit_ts > ts -> None
            | _ ->
                Some
                  (Array.append (Row.project v.v_row vis)
                     [|
                       Value.Datetime e.Types.commit_ts;
                       Value.String e.Types.user;
                       Value.String (Types.operation_to_string v.v_op);
                       Value.Int v.v_txn_id;
                       Value.Int v.v_seq;
                     |])))
      versions
  in
  (names, rows)

(* The table's user rows as they stood at commit timestamp [ts]: current
   rows whose creating transaction had committed by then, plus history
   rows created by then and not yet superseded by then (paper §3.1's
   MVCC visibility, replayed against the commit timestamps recorded in
   the transactions system table). *)
let as_of_rel t lt ~ts =
  let admissible = Hashtbl.create 256 in
  List.iter
    (fun (e : Types.txn_entry) ->
      if e.commit_ts <= ts then Hashtbl.replace admissible e.txn_id ())
    (Database_ledger.entries t.dbl);
  let schema = Ledger_table.schema lt in
  let vis = visible_ordinals schema in
  let s_txn, _, e_txn, _ = System_columns.ordinals schema in
  let txn_at row o =
    match row.(o) with Value.Int i -> Some i | _ -> None
  in
  let committed row o =
    match txn_at row o with
    | Some txn -> Hashtbl.mem admissible txn
    | None -> false
  in
  let current =
    List.filter
      (fun row -> committed row s_txn)
      (Ledger_table.current_rows lt)
  in
  let history =
    List.filter
      (fun row -> committed row s_txn && not (committed row e_txn))
      (Ledger_table.history_rows lt)
  in
  ( visible_names schema,
    List.map (fun row -> Row.project row vis) (current @ history) )

let catalog t : Sqlexec.Executor.catalog =
  let strip_of key suffix =
    if
      String.length key > String.length suffix
      && String.sub key
           (String.length key - String.length suffix)
           (String.length suffix)
         = suffix
    then Some (String.sub key 0 (String.length key - String.length suffix))
    else None
  in
  let lookup_table_as_of name ~as_of =
    let key = norm name in
    match strip_of key "_ledger" with
    | Some base when find_ledger_table t base <> None ->
        let lt = Option.get (find_ledger_table t base) in
        Some (provenance_rel t ~as_of lt)
    | _ -> (
        match find_ledger_table t key with
        | Some lt -> Some (as_of_rel t lt ~ts:as_of)
        | None -> None)
  in
  let lookup_table name =
    let key = norm name in
    let strip suffix =
      if
        String.length key > String.length suffix
        && String.sub key
             (String.length key - String.length suffix)
             (String.length suffix)
           = suffix
      then Some (String.sub key 0 (String.length key - String.length suffix))
      else None
    in
    if key = "database_ledger_transactions" then
      Some
        ( Database_ledger.transactions_table_columns,
          Database_ledger.transactions_rows t.dbl )
    else if key = "database_ledger_blocks" then
      Some
        (Database_ledger.blocks_table_columns, Database_ledger.blocks_rows t.dbl)
    else
      match strip "__versions" with
      | Some base -> (
          match find_ledger_table t base with
          | Some lt -> Some (versions_rel lt)
          | None -> None)
      | None -> (
          match strip "__ledger_view" with
          | Some base -> (
              match find_ledger_table t base with
              | Some lt -> Some (ledger_view_rel lt)
              | None -> None)
          | None -> (
              match strip "__history" with
              | Some base -> (
                  match find_ledger_table t base with
                  | Some lt ->
                      let schema = Ledger_table.schema lt in
                      Some
                        ( visible_names schema
                          @ System_columns.names,
                          List.map
                            (fun row ->
                              let vis = visible_ordinals schema in
                              let s_txn, s_seq, e_txn, e_seq =
                                System_columns.ordinals schema
                              in
                              Row.project row
                                (vis @ [ s_txn; s_seq; e_txn; e_seq ]))
                            (Ledger_table.history_rows lt) )
                  | None -> None)
              | None -> (
                  let provenance =
                    (* [<table>_ledger]: the first-class provenance view.
                       A real table whose own name ends in _ledger still
                       wins below when no base table shadows it. *)
                    match strip "_ledger" with
                    | Some base -> (
                        match find_ledger_table t base with
                        | Some lt -> Some (provenance_rel t lt)
                        | None -> None)
                    | None -> None
                  in
                  match provenance with
                  | Some rel -> Some rel
                  | None -> (
                  match find_entry t name with
                  | Some (L lt) ->
                      let schema = Ledger_table.schema lt in
                      let vis = visible_ordinals schema in
                      Some
                        ( visible_names schema,
                          List.map
                            (fun row -> Row.project row vis)
                            (Ledger_table.current_rows lt) )
                  | Some (R store) ->
                      let schema = Table_store.schema store in
                      Some
                        ( List.map
                            (fun (c : Column.t) -> c.name)
                            (Schema.columns schema),
                          Table_store.scan store )
                  | None -> None))))
  in
  { Sqlexec.Executor.lookup_table; lookup_table_as_of; functions = [] }

let query t text = Sqlexec.Executor.query (catalog t) text

let record_truncation t ~horizon_block ~horizon_hash ~max_txn =
  let (), _ =
    with_txn t ~user:"system" (fun txn ->
        Txn.insert txn t.tables_meta
          [|
            Value.Int (next_event t);
            Value.String
              (Printf.sprintf "truncate:%s:%d" (Hex.encode horizon_hash) max_txn);
            Value.Int horizon_block;
            Value.String "TRUNCATE";
          |])
  in
  ()

let truncation_horizons t =
  List.filter_map
    (fun row ->
      match row with
      | [| _; Value.String name; Value.Int horizon_block; Value.String "TRUNCATE"; _; _; _; _ |]
        -> (
          match String.split_on_char ':' name with
          | [ "truncate"; hex; max_txn ] -> (
              match int_of_string_opt max_txn with
              | Some m when Hex.is_hex hex ->
                  Some (horizon_block, Hex.decode hex, m)
              | _ -> None)
          | _ -> None)
      | _ -> None)
    (Ledger_table.current_rows t.tables_meta)

(* ------------------------------------------------------------------ *)
(* Replay support *)

let table_by_id t id =
  List.find_map
    (function
      | L lt when Ledger_table.table_id lt = id -> Some (`L lt)
      | R store when Table_store.table_id store = id -> Some (`R store)
      | _ -> None)
    t.tables

let apply_structural_ddl t payload =
  let str name = Sjson.get_string (Sjson.member name payload) in
  let int name = Sjson.get_int (Sjson.member name payload) in
  let ints name = List.map Sjson.get_int (Sjson.get_list (Sjson.member name payload)) in
  let columns name =
    List.map
      (fun cj ->
        match Column.of_json cj with
        | Ok c -> c
        | Error e -> failwith e)
      (Sjson.get_list (Sjson.member name payload))
  in
  let require_ledger id =
    match table_by_id t id with
    | Some (`L lt) -> lt
    | _ -> failwith (Printf.sprintf "no ledger table with id %d" id)
  in
  let require_store id =
    match table_by_id t id with
    | Some (`L lt) -> Ledger_table.main lt
    | Some (`R store) -> store
    | None -> failwith (Printf.sprintf "no table with id %d" id)
  in
  try
    (match str "ddl" with
    | "create_ledger" ->
        let table_id = int "table_id" in
        let kind =
          match str "kind" with
          | "append_only" -> Ledger_table.Append_only
          | _ -> Ledger_table.Updateable
        in
        let lt =
          Ledger_table.create ~name:(str "name") ~table_id
            ~schema:(Schema.make (columns "columns"))
            ~key_ordinals:(ints "key") ~kind
        in
        t.tables <- t.tables @ [ L lt ];
        t.next_table_id <- max t.next_table_id (table_id + 1)
    | "create_regular" ->
        let table_id = int "table_id" in
        let store =
          Table_store.create ~name:(str "name") ~table_id
            ~schema:(Schema.make (columns "columns"))
            ~key_ordinals:(ints "key")
        in
        t.tables <- t.tables @ [ R store ];
        t.next_table_id <- max t.next_table_id (table_id + 1)
    | "rename_table" -> Ledger_table.rename (require_ledger (int "table_id")) (str "new_name")
    | "remove_regular" ->
        let id = int "table_id" in
        t.tables <-
          List.filter
            (function R store -> Table_store.table_id store <> id | L _ -> true)
            t.tables
    | "add_column" ->
        let lt = require_ledger (int "table_id") in
        let column =
          match Column.of_json (Sjson.member "column" payload) with
          | Ok c -> c
          | Error e -> failwith e
        in
        let schema = Schema.add_column (Ledger_table.schema lt) column in
        let pad row = Array.append row [| Value.Null |] in
        Table_store.migrate (Ledger_table.main lt) ~schema ~f:pad;
        (match Ledger_table.history lt with
        | Some h -> Table_store.migrate h ~schema ~f:pad
        | None -> ())
    | "hide_column" ->
        let lt = require_ledger (int "table_id") in
        set_both_schemas lt
          (Schema.hide_column (Ledger_table.schema lt) (str "column"))
    | "alter_column_schema" ->
        (* The structural half of alter_column_type; the repopulation was
           logged as ordinary transaction data. Derivations (mangled name)
           must match alter_column_type exactly. *)
        let lt = require_ledger (int "table_id") in
        let column = str "column" in
        let dtype =
          match Datatype.of_string (str "new_type") with
          | Some d -> d
          | None -> failwith "bad type"
        in
        let schema = Ledger_table.schema lt in
        let dropped_name =
          Printf.sprintf "%s__dropped_%d" column (Schema.arity schema)
        in
        let schema =
          Schema.hide_column
            (Schema.rename_column schema ~old_name:column ~new_name:dropped_name)
            dropped_name
        in
        let schema =
          Schema.add_column schema (Column.make ~nullable:true column dtype)
        in
        let pad row = Array.append row [| Value.Null |] in
        Table_store.migrate (Ledger_table.main lt) ~schema ~f:pad;
        (match Ledger_table.history lt with
        | Some h -> Table_store.migrate h ~schema ~f:pad
        | None -> ())
    | "create_index" ->
        Table_store.create_index
          (require_store (int "table_id"))
          ~name:(str "index") ~key_ordinals:(ints "key")
    | "drop_index" ->
        Table_store.drop_index (require_store (int "table_id")) ~name:(str "index")
    | "create_database" -> () (* header; handled by the replayer *)
    | other -> failwith ("unknown ddl record: " ^ other));
    Ok ()
  with
  | Failure e | Invalid_argument e -> Error e

let refresh_counters t =
  let max_event lt =
    List.fold_left
      (fun acc row -> match row.(0) with Value.Int i -> max acc i | _ -> acc)
      0
      (Ledger_table.current_rows lt)
  in
  t.next_meta_event <-
    1 + max (max_event t.tables_meta) (max_event t.columns_meta);
  t.next_table_id <-
    List.fold_left
      (fun acc -> function
        | L lt -> max acc (Ledger_table.table_id lt + 1)
        | R store -> max acc (Table_store.table_id store + 1))
      t.next_table_id t.tables

(* ------------------------------------------------------------------ *)
(* Snapshot support *)

type raw_state = {
  raw_name : string;
  raw_created : float;
  raw_next_table_id : int;
  raw_next_meta_event : int;
  raw_tables : [ `L of Ledger_table.t | `R of Table_store.t ] list;
  raw_ledger : Database_ledger.t;
}

let expose t =
  {
    raw_name = t.db_name;
    raw_created = t.created;
    raw_next_table_id = t.next_table_id;
    raw_next_meta_event = t.next_meta_event;
    raw_tables =
      List.map (function L lt -> `L lt | R store -> `R store) t.tables;
    raw_ledger = t.dbl;
  }

let assemble ~clock raw =
  let tables =
    List.map (function `L lt -> L lt | `R store -> R store) raw.raw_tables
  in
  let meta_by_id id =
    match
      List.find_opt
        (function L lt -> Ledger_table.table_id lt = id | R _ -> false)
        tables
    with
    | Some (L lt) -> lt
    | _ -> Types.errorf "snapshot is missing metadata table %d" id
  in
  {
    db_name = raw.raw_name;
    db_id = Database_ledger.database_id raw.raw_ledger;
    created = raw.raw_created;
    clock;
    dbl = raw.raw_ledger;
    tables;
    next_table_id = raw.raw_next_table_id;
    next_meta_event = raw.raw_next_meta_event;
    tables_meta = meta_by_id (-10);
    columns_meta = meta_by_id (-11);
  }

(* ------------------------------------------------------------------ *)
(* Snapshots

   An O(tables) frozen view for lock-free readers: every table (user,
   metadata, ledger system) is captured by sharing its COW B+tree roots,
   and the ledger's scalar chain state rides along in the record copy.
   The result is an ordinary [Database.t], so the whole read surface —
   [query], [catalog], [Verifier.verify], [Receipt.generate] — works on
   it unchanged; it must never be handed to a write path. Capture must
   happen while the caller holds the writer side of the server lock (or
   is otherwise the only mutator): the engine applies in-memory effects
   at staging time, so a capture under the writer lock is transactionally
   consistent even before the WAL batch reaches disk. *)

let snapshot t =
  let tables =
    List.map
      (function
        | L lt -> L (Ledger_table.snapshot lt)
        | R store -> R (Table_store.snapshot store))
      t.tables
  in
  let meta_by_id id =
    match
      List.find_opt
        (function L lt -> Ledger_table.table_id lt = id | R _ -> false)
        tables
    with
    | Some (L lt) -> lt
    | _ -> assert false
  in
  {
    t with
    dbl = Database_ledger.snapshot t.dbl;
    tables;
    tables_meta = meta_by_id (-10);
    columns_meta = meta_by_id (-11);
  }

(* ------------------------------------------------------------------ *)
(* Backup / restore *)

let backup t =
  let tables =
    List.map
      (function
        | L lt -> L (Ledger_table.unsafe_copy lt)
        | R store -> R (Table_store.deep_copy store))
      t.tables
  in
  let meta_by_id id =
    match
      List.find_opt
        (function L lt -> Ledger_table.table_id lt = id | R _ -> false)
        tables
    with
    | Some (L lt) -> lt
    | _ -> assert false
  in
  {
    t with
    dbl = Database_ledger.unsafe_copy t.dbl;
    tables;
    tables_meta = meta_by_id (-10);
    columns_meta = meta_by_id (-11);
  }

let restore backup_db ~create_time =
  let copy = backup backup_db in
  {
    copy with
    created = create_time;
    dbl = Database_ledger.with_create_time copy.dbl create_time;
  }
