(** Whole-database snapshots as JSON files.

    A snapshot is the substrate for the paper's backup-based workflows: the
    "earlier backups of the database" that §3.7's recovery from tampering
    assumes, and the restore operations of §3.6. A snapshot captures every
    table (ledger and regular, including history tables and system tables),
    the Database Ledger state, and the allocator counters; loading it yields
    an independent database equal to the original.

    The format is self-describing JSON wrapped in a checksummed container
    (a [SQLLEDGER-SNAPSHOT v2] header carrying a CRC-32 and byte length),
    so a reader can reject a torn or bit-flipped file before parsing it.
    The checksum is an *availability* device only — it is what lets crash
    recovery fall back to an older generation. It is no substitute for
    verification: a restored snapshot must still be verified against
    trusted digests, exactly as the paper requires of restored backups.

    Saves are crash-safe: the container is written to [path].tmp, fsynced,
    and renamed over [path], with the previous generation retained as
    [path].prev until the new one is durable. Files written before the
    container existed (bare JSON) still load. *)

val save : Database.t -> Sjson.t
(** Serialise the full database state. The snapshot records the WAL position
    at which it was taken ([wal_lsn]) so that {!Wal_replay} can resume the
    log from that point. *)

val wal_lsn : Sjson.t -> int
(** WAL position recorded in a snapshot (0 when absent). *)

val save_to_file : Database.t -> path:string -> unit
(** Atomically write the checksummed container (tmp + fsync + rename,
    keeping [path].prev). Writes are routed through the ["snapshot.*"]
    failpoints. *)

val read_file : string -> (Sjson.t, string) result
(** Read a snapshot file back, verifying the container checksum and length
    when present. [Error] on a torn, truncated, or corrupted file — the
    caller can then fall back to another generation. *)

val load :
  ?clock:(unit -> float) -> ?wal_path:string -> Sjson.t ->
  (Database.t, string) result
(** Reconstruct a database. [clock] defaults to the wall clock; [wal_path]
    attaches a fresh file-backed WAL (truncating) so the loaded database
    continues durably. *)

val load_from_file :
  ?clock:(unit -> float) -> ?wal_path:string -> path:string -> unit ->
  (Database.t, string) result
