(** Transaction receipts for non-repudiation (paper §5.1).

    A receipt proves that a transaction is part of the ledger even if the
    ledger is later tampered with or destroyed: it carries the transaction
    entry, its ledger hash (the Merkle leaf), the Merkle proof connecting
    that leaf to the block's transaction-tree root, the block header, and a
    signature over the block hash under the block's one-time key. One
    signing operation per block covers receipts for every transaction in
    it. *)

type t = {
  entry : Types.txn_entry;
  leaf : string;
      (** the entry's ledger hash — what the proof connects to the root *)
  proof : Merkle.Proof.t;
  block : Types.block;
  public_key : Ledger_crypto.Lamport.public_key option;
  signature : Ledger_crypto.Lamport.signature option;
}

val generate : Database.t -> txn_id:int -> (t, string) result
(** Uncached reference path: rebuilds the block's Merkle tree and re-signs
    on every call. The transaction must already be in a closed block
    (generate a digest first to close the current block). Includes a
    signature when the database was created with a signing seed. *)

type issue_error =
  | Unknown_txn  (** no such transaction in the ledger *)
  | Open_block
      (** committed but still in the open block: retry after a block
          close (a digest, or the block filling up) *)
  | Inconsistent of string
      (** the ledger itself fails its root check; run verification *)

val issue_error_to_string : txn_id:int -> issue_error -> string

val generate_cached : Database.t -> txn_id:int -> (t, issue_error) result
(** Production path: serves the receipt from the ledger's per-block
    receipt cache (materialized Merkle tree, txn index, amortized block
    signature), so N receipts from one block share the common subtree
    hashes and a single signing operation. Byte-identical output to
    {!generate}. *)

val txn_pending : Database.t -> txn_id:int -> bool
(** True when the transaction is committed but still in the open block —
    a receipt for it becomes available at the next block close. *)

(** Typed offline-verification failures, ordered by what they implicate:
    the row payload, the proof path, the pinned trust anchor, or the
    receipt document itself. *)
type failure =
  | Tampered_row  (** the entry does not hash to the receipt's leaf *)
  | Bad_path  (** the proof does not connect the leaf to the block root *)
  | Wrong_root  (** the pinned digest's hash differs from the block's *)
  | Stale_digest  (** the pinned digest covers a different block *)
  | Block_mismatch  (** entry and block header disagree on the block id *)
  | Bad_signature  (** the Lamport signature fails over the block hash *)
  | Wrong_key  (** the signing key differs from the expected fingerprint *)
  | Malformed of string  (** structurally invalid receipt *)

val failure_to_string : failure -> string

val verify :
  ?digest:Digest.t ->
  ?expected_fingerprint:string ->
  t ->
  (unit, failure) result
(** Standalone verification, requiring no database: recomputes the entry
    hash against the leaf, replays the Merkle proof against the block's
    transaction root, and recomputes the block hash. When present, the
    signature is checked against the included public key;
    [expected_fingerprint] additionally pins that key. [digest] anchors
    the block hash to an externally stored digest of the same block. *)

val strip_keys : t -> t
(** The receipt without its key material — what a batched response sends
    per receipt, next to one {!key_material} entry per block. *)

val key_material : t -> (int * Sjson.t) option
(** [(block_id, {block_id; public_key; signature})] for a signed receipt:
    the per-block fields a batched response carries once instead of per
    receipt (a Lamport public key dwarfs the rest of the receipt).
    [None] for unsigned receipts. *)

val inflate_batch : block_keys:Sjson.t list -> Sjson.t list -> Sjson.t list
(** Re-attach batched-away key material: each stripped receipt JSON whose
    block appears in [block_keys] gains that block's public_key and
    signature fields again, restoring the self-contained single-receipt
    format byte for byte. Receipts that already carry keys, or whose
    block has no entry, pass through unchanged. *)

val to_json : t -> Sjson.t
val of_json : Sjson.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
