open Relation
module Table_store = Storage.Table_store

let format_version = 1

(* ------------------------------------------------------------------ *)
(* Serialisation *)

let schema_to_json schema =
  Sjson.List (List.map Column.to_json (Schema.columns schema))

let rows_to_json rows =
  Sjson.List
    (List.map
       (fun row -> Sjson.List (List.map Value.to_json (Array.to_list row)))
       rows)

let store_to_json store =
  Sjson.Obj
    [
      ("name", Sjson.String (Table_store.name store));
      ("table_id", Sjson.Int (Table_store.table_id store));
      ("schema", schema_to_json (Table_store.schema store));
      ( "key_ordinals",
        Sjson.List
          (List.map (fun i -> Sjson.Int i) (Table_store.key_ordinals store)) );
      ( "indexes",
        Sjson.List
          (List.map
             (fun ({ Table_store.index_name; key_ordinals } : Table_store.index) ->
               Sjson.Obj
                 [
                   ("name", Sjson.String index_name);
                   ( "key_ordinals",
                     Sjson.List (List.map (fun i -> Sjson.Int i) key_ordinals)
                   );
                 ])
             (Table_store.indexes store)) );
      ("rows", rows_to_json (Table_store.scan store));
    ]

let table_entry_to_json = function
  | `L lt ->
      Sjson.Obj
        [
          ("kind", Sjson.String "ledger");
          ( "ledger_kind",
            Sjson.String
              (match Ledger_table.kind lt with
              | Ledger_table.Append_only -> "append_only"
              | Ledger_table.Updateable -> "updateable") );
          ("name", Sjson.String (Ledger_table.name lt));
          ("table_id", Sjson.Int (Ledger_table.table_id lt));
          ("main", store_to_json (Ledger_table.main lt));
          ( "history",
            match Ledger_table.history lt with
            | Some h -> store_to_json h
            | None -> Sjson.Null );
        ]
  | `R store ->
      Sjson.Obj [ ("kind", Sjson.String "regular"); ("store", store_to_json store) ]

let save db =
  let raw = Database.expose db in
  Sjson.Obj
    [
      ("format_version", Sjson.Int format_version);
      ( "wal_lsn",
        Sjson.Int (Aries.Wal.last_lsn (Database_ledger.wal raw.Database.raw_ledger)) );
      ("name", Sjson.String raw.Database.raw_name);
      ("created", Sjson.Float raw.Database.raw_created);
      ("next_table_id", Sjson.Int raw.Database.raw_next_table_id);
      ("next_meta_event", Sjson.Int raw.Database.raw_next_meta_event);
      ( "tables",
        Sjson.List (List.map table_entry_to_json raw.Database.raw_tables) );
      ("ledger", Database_ledger.to_snapshot raw.Database.raw_ledger);
    ]

(* ------------------------------------------------------------------ *)
(* On-disk container

   A saved snapshot is wrapped in a one-line header:

       SQLLEDGER-SNAPSHOT v2 crc32=CCCCCCCC len=N
       <exactly N bytes of JSON>

   so a reader can tell a complete, uncorrupted snapshot from a torn or
   bit-flipped one before parsing it — that check is what lets recovery
   fall back to an older generation instead of trusting garbage. Files
   written before the container existed start with '{' and are accepted
   as-is (no integrity check possible). Saves are atomic: tmp + fsync +
   rename, with the previous generation kept as [path].prev. *)

let container_magic = "SQLLEDGER-SNAPSHOT v2"

let snapshot_points = "snapshot"

let () = Fault.Fsutil.register_atomic_points snapshot_points

let save_to_file db ~path =
  let body = Sjson.to_string ~pretty:true (save db) in
  let crc = Fault.Crc32.string body in
  let contents =
    Printf.sprintf "%s crc32=%08lx len=%d\n%s" container_magic crc
      (String.length body) body
  in
  Fault.Fsutil.atomic_write ~keep_previous:true ~point_prefix:snapshot_points
    ~path contents

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
      let parse body =
        match Sjson.of_string body with
        | exception Sjson.Parse_error e -> Error (path ^ ": " ^ e)
        | json -> Ok json
      in
      let magic_len = String.length container_magic in
      if
        String.length text >= magic_len
        && String.sub text 0 magic_len = container_magic
      then
        match String.index_opt text '\n' with
        | None -> Error (path ^ ": truncated snapshot header")
        | Some nl -> (
            let header = String.sub text 0 nl in
            let scan () =
              Scanf.sscanf (String.sub header magic_len (nl - magic_len))
                " crc32=%8lx len=%d%!" (fun crc len -> (crc, len))
            in
            match scan () with
            | exception Scanf.Scan_failure _ | exception Failure _
            | exception End_of_file ->
                Error (path ^ ": malformed snapshot header: " ^ header)
            | crc, len ->
                let body_off = nl + 1 in
                if String.length text - body_off <> len then
                  Error
                    (Printf.sprintf
                       "%s: snapshot body is %d bytes, header says %d \
                        (torn or truncated)"
                       path
                       (String.length text - body_off)
                       len)
                else if Fault.Crc32.substring text ~off:body_off ~len <> crc
                then Error (path ^ ": snapshot checksum mismatch")
                else parse (String.sub text body_off len))
      else parse text)

let wal_lsn json =
  match Sjson.member "wal_lsn" json with Sjson.Int i -> i | _ -> 0

(* ------------------------------------------------------------------ *)
(* Loading *)

exception Bad of string

let failf fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let schema_of_json json =
  let columns =
    List.map
      (fun cj ->
        match Column.of_json cj with
        | Ok c -> c
        | Error e -> failf "%s" e)
      (Sjson.get_list json)
  in
  Schema.make columns

let store_of_json json =
  let name = Sjson.get_string (Sjson.member "name" json) in
  let table_id = Sjson.get_int (Sjson.member "table_id" json) in
  let schema = schema_of_json (Sjson.member "schema" json) in
  let key_ordinals =
    List.map Sjson.get_int (Sjson.get_list (Sjson.member "key_ordinals" json))
  in
  let store = Table_store.create ~name ~table_id ~schema ~key_ordinals in
  List.iter
    (fun row_json ->
      let cells = Sjson.get_list row_json in
      if List.length cells <> Schema.arity schema then
        failf "%s: row arity mismatch" name;
      let row =
        Array.of_list
          (List.mapi
             (fun i cell ->
               let col : Column.t = Schema.column schema i in
               match Value.of_json col.dtype cell with
               | Some v -> v
               | None -> failf "%s: bad value in column %s" name col.name)
             cells)
      in
      Table_store.insert store row)
    (Sjson.get_list (Sjson.member "rows" json));
  List.iter
    (fun ij ->
      Table_store.create_index store
        ~name:(Sjson.get_string (Sjson.member "name" ij))
        ~key_ordinals:
          (List.map Sjson.get_int
             (Sjson.get_list (Sjson.member "key_ordinals" ij))))
    (Sjson.get_list (Sjson.member "indexes" json));
  store

let table_entry_of_json json =
  match Sjson.member "kind" json with
  | Sjson.String "regular" -> `R (store_of_json (Sjson.member "store" json))
  | Sjson.String "ledger" ->
      let kind =
        match Sjson.member "ledger_kind" json with
        | Sjson.String "append_only" -> Ledger_table.Append_only
        | Sjson.String "updateable" -> Ledger_table.Updateable
        | _ -> failf "bad ledger kind"
      in
      let main = store_of_json (Sjson.member "main" json) in
      let history =
        match Sjson.member "history" json with
        | Sjson.Null -> None
        | h -> Some (store_of_json h)
      in
      `L
        (Ledger_table.unsafe_assemble
           ~name:(Sjson.get_string (Sjson.member "name" json))
           ~table_id:(Sjson.get_int (Sjson.member "table_id" json))
           ~kind ~main ~history)
  | _ -> failf "bad table kind"

let load ?(clock = Unix.gettimeofday) ?wal_path json =
  try
    (match Sjson.member "format_version" json with
    | Sjson.Int v when v = format_version -> ()
    | _ -> failf "unsupported snapshot format");
    let ledger =
      match
        Database_ledger.of_snapshot ?wal_path (Sjson.member "ledger" json)
      with
      | Ok l -> l
      | Error e -> failf "%s" e
    in
    let created =
      match Sjson.member "created" json with
      | Sjson.Float f -> f
      | Sjson.Int i -> float_of_int i
      | _ -> failf "missing create time"
    in
    let raw =
      {
        Database.raw_name = Sjson.get_string (Sjson.member "name" json);
        raw_created = created;
        raw_next_table_id = Sjson.get_int (Sjson.member "next_table_id" json);
        raw_next_meta_event =
          Sjson.get_int (Sjson.member "next_meta_event" json);
        raw_tables =
          List.map table_entry_of_json
            (Sjson.get_list (Sjson.member "tables" json));
        raw_ledger = ledger;
      }
    in
    Ok (Database.assemble ~clock raw)
  with
  | Bad e -> Error e
  | Invalid_argument e | Failure e -> Error ("malformed snapshot: " ^ e)
  | Types.Ledger_error e -> Error e

let load_from_file ?clock ?wal_path ~path () =
  Result.bind (read_file path) (load ?clock ?wal_path)
