open Relation
module Hex = Ledger_crypto.Hex
module Table_store = Storage.Table_store

type violation =
  | Digest_block_missing of { block_id : int }
  | Digest_mismatch of { block_id : int; expected : string; computed : string }
  | Digest_foreign of { database_id : string }
  | Chain_gap of { block_id : int; missing : int }
  | Chain_broken of {
      block_id : int;
      recorded_prev : string;
      computed_prev : string;
    }
  | Genesis_prev_not_null of { recorded : string }
  | Block_root_mismatch of { block_id : int; recorded : string; computed : string }
  | Block_count_mismatch of { block_id : int; recorded : int; actual : int }
  | Orphan_transaction of { txn_id : int; block_id : int }
  | Table_root_mismatch of {
      txn_id : int;
      table : string;
      recorded : string option;
      computed : string option;
    }
  | Orphan_row_version of { table : string; txn_id : int }
  | Index_mismatch of { table : string; index : string }

type report = {
  violations : violation list;
  blocks_checked : int;
  transactions_checked : int;
  versions_checked : int;
  verified_upto_block : int option;
}

let ok r = r.violations = []

(* Shared shorthand for recomputing a block hash inside a SQL query —
   identical, argument for argument, to Database_ledger.block_hash. *)
let block_hash_sql alias =
  Printf.sprintf
    "LEDGERHASH(%s.block_id, %s.prev_hash, %s.txn_root, %s.txn_count, %s.closed_ts)"
    alias alias alias alias alias

let entry_hash_sql alias =
  Printf.sprintf
    "LEDGERHASH(%s.txn_id, %s.block_id, %s.ordinal, %s.commit_ts, %s.username, %s.table_roots)"
    alias alias alias alias alias alias

let get_cell rel row name =
  match Sqlexec.Rel.resolve rel ~table:None ~column:name with
  | Ok i -> row.(i)
  | Error e -> Types.errorf "verifier internal: %s" e

let as_int_opt = function Value.Int i -> Some i | _ -> None

let as_string_exn what = function
  | Value.String s -> s
  | v -> Types.errorf "verifier internal: %s is %s" what (Value.to_string v)

(* ------------------------------------------------------------------ *)
(* Invariant 1: supplied digests match recomputed block hashes. *)

let check_digests db digests =
  let violations = ref [] in
  let local, foreign =
    List.partition
      (fun (d : Digest.t) ->
        String.equal d.database_id (Database.database_id db))
      digests
  in
  List.iter
    (fun (d : Digest.t) ->
      violations := Digest_foreign { database_id = d.database_id } :: !violations)
    foreign;
  if local <> [] then begin
    let json = Sjson.to_string (Digest.list_to_json local) in
    let sql =
      Printf.sprintf
        "SELECT d.block_id AS digest_block, d.hash AS expected, \
         b.block_id AS found_block, %s AS computed \
         FROM OPENJSON('%s') d \
         LEFT JOIN database_ledger_blocks b ON d.block_id = b.block_id"
        (block_hash_sql "b")
        (* single quotes in JSON strings need doubling for the SQL lexer *)
        (String.concat "''" (String.split_on_char '\'' json))
    in
    let rel = Database.query db sql in
    List.iter
      (fun row ->
        let block_id =
          match as_int_opt (get_cell rel row "digest_block") with
          | Some i -> i
          | None -> Types.errorf "digest without block id"
        in
        match get_cell rel row "found_block" with
        | Value.Null ->
            violations := Digest_block_missing { block_id } :: !violations
        | _ ->
            let expected = as_string_exn "digest hash" (get_cell rel row "expected") in
            let computed = as_string_exn "block hash" (get_cell rel row "computed") in
            if not (String.equal expected computed) then
              violations :=
                Digest_mismatch { block_id; expected; computed } :: !violations)
      rel.Sqlexec.Rel.rows
  end;
  !violations

(* ------------------------------------------------------------------ *)
(* Invariant 2: the block chain links hold. *)

let check_chain db =
  let horizons = Database.truncation_horizons db in
  let violations = ref [] in
  let sql =
    Printf.sprintf
      "SELECT b.block_id AS bid, b.prev_hash AS recorded_prev, \
       LAG(b.block_id) OVER (ORDER BY b.block_id) AS prev_id, \
       LAG(%s) OVER (ORDER BY b.block_id) AS computed_prev \
       FROM database_ledger_blocks b ORDER BY b.block_id"
      (block_hash_sql "b")
  in
  let rel = Database.query db sql in
  let count = ref 0 in
  List.iter
    (fun row ->
      incr count;
      let block_id =
        Option.get (as_int_opt (get_cell rel row "bid"))
      in
      let recorded_prev =
        as_string_exn "prev_hash" (get_cell rel row "recorded_prev")
      in
      match get_cell rel row "prev_id" with
      | Value.Null ->
          (* First block present: block 0 with a null prev, or the first
             survivor of a recorded truncation (§5.2), whose prev link is
             anchored by the ledgered horizon hash. *)
          if block_id = 0 then begin
            if recorded_prev <> "" then
              violations :=
                Genesis_prev_not_null { recorded = recorded_prev } :: !violations
          end
          else begin
            match
              List.find_opt (fun (h, _, _) -> h = block_id - 1) horizons
            with
            | Some (_, horizon_hash, _) ->
                if not (String.equal recorded_prev (Hex.encode horizon_hash))
                then
                  violations :=
                    Chain_broken
                      {
                        block_id;
                        recorded_prev;
                        computed_prev = Hex.encode horizon_hash;
                      }
                    :: !violations
            | None ->
                violations := Chain_gap { block_id; missing = 0 } :: !violations
          end
      | Value.Int prev_id ->
          if prev_id <> block_id - 1 then
            violations :=
              Chain_gap { block_id; missing = block_id - 1 } :: !violations
          else begin
            let computed_prev =
              as_string_exn "computed prev" (get_cell rel row "computed_prev")
            in
            if not (String.equal recorded_prev computed_prev) then
              violations :=
                Chain_broken { block_id; recorded_prev; computed_prev }
                :: !violations
          end
      | v -> Types.errorf "unexpected prev_id %s" (Value.to_string v))
    rel.Sqlexec.Rel.rows;
  (!violations, !count)

(* ------------------------------------------------------------------ *)
(* Invariant 3: per-block transaction Merkle roots. *)

let check_block_roots db =
  let violations = ref [] in
  let open_block = Database_ledger.current_block_id (Database.ledger db) in
  let sql =
    Printf.sprintf
      "SELECT tr.block_id AS tbid, b.block_id AS bbid, \
       b.txn_root AS recorded, tr.computed AS computed, \
       b.txn_count AS recorded_count, tr.cnt AS actual_count \
       FROM (SELECT t.block_id AS block_id, \
             MERKLETREEAGG(%s ORDER BY t.ordinal) AS computed, \
             COUNT(*) AS cnt \
             FROM database_ledger_transactions t GROUP BY t.block_id) tr \
       FULL JOIN database_ledger_blocks b ON tr.block_id = b.block_id"
      (entry_hash_sql "t")
  in
  let rel = Database.query db sql in
  let txns = ref 0 in
  List.iter
    (fun row ->
      match (get_cell rel row "tbid", get_cell rel row "bbid") with
      | Value.Int tbid, Value.Null ->
          (* Transactions in the still-open block are expected to have no
             closed block yet; anything older is an orphan. *)
          if tbid < open_block then
            List.iter
              (fun (e : Types.txn_entry) ->
                violations :=
                  Orphan_transaction { txn_id = e.txn_id; block_id = tbid }
                  :: !violations)
              (Database_ledger.entries_of_block (Database.ledger db)
                 ~block_id:tbid)
          else begin
            match as_int_opt (get_cell rel row "actual_count") with
            | Some n -> txns := !txns + n
            | None -> ()
          end
      | Value.Null, Value.Int bbid ->
          (* A block with no transactions at all: its recorded root must be
             the empty root and count 0. *)
          let recorded = as_string_exn "txn_root" (get_cell rel row "recorded") in
          let empty = Hex.encode Merkle.Streaming.empty_root in
          if not (String.equal recorded empty) then
            violations :=
              Block_root_mismatch { block_id = bbid; recorded; computed = empty }
              :: !violations
      | Value.Int bid, Value.Int _ ->
          let recorded = as_string_exn "txn_root" (get_cell rel row "recorded") in
          let computed = as_string_exn "computed root" (get_cell rel row "computed") in
          (match as_int_opt (get_cell rel row "actual_count") with
          | Some n -> txns := !txns + n
          | None -> ());
          if not (String.equal recorded computed) then
            violations :=
              Block_root_mismatch { block_id = bid; recorded; computed }
              :: !violations;
          (match
             ( as_int_opt (get_cell rel row "recorded_count"),
               as_int_opt (get_cell rel row "actual_count") )
           with
          | Some r, Some a when r <> a ->
              violations :=
                Block_count_mismatch { block_id = bid; recorded = r; actual = a }
                :: !violations
          | _ -> ())
      | _ -> Types.errorf "verifier internal: block roots join")
    rel.Sqlexec.Rel.rows;
  (!violations, !txns)

(* ------------------------------------------------------------------ *)
(* Invariant 4: per-transaction, per-table row-version Merkle roots. *)

let check_table_roots db lt =
  let max_truncated_txn =
    List.fold_left
      (fun acc (_, _, m) -> max acc m)
      0
      (Database.truncation_horizons db)
  in
  let violations = ref [] in
  let table = Ledger_table.name lt in
  let table_id = Ledger_table.table_id lt in
  let sql =
    Printf.sprintf
      "SELECT v.txn_id AS vtxn, s.txn_id AS stxn, \
       v.computed AS computed, s.table_roots AS roots, v.cnt AS cnt \
       FROM (SELECT txn_id, MERKLETREEAGG(row_hash ORDER BY seq) AS computed, \
             COUNT(*) AS cnt FROM %s__versions GROUP BY txn_id) v \
       FULL JOIN database_ledger_transactions s ON v.txn_id = s.txn_id"
      table
  in
  let rel = Database.query db sql in
  let versions = ref 0 in
  List.iter
    (fun row ->
      let recorded_root roots_json =
        match Types.table_roots_of_string roots_json with
        | Error e -> Types.errorf "corrupt table_roots: %s" e
        | Ok roots ->
            List.assoc_opt table_id roots |> Option.map Hex.encode
      in
      match (get_cell rel row "vtxn", get_cell rel row "stxn") with
      | Value.Int txn_id, _ when txn_id <= max_truncated_txn ->
          (* Evidence for this transaction was truncated (§5.2); its
             surviving creation leaves are unverifiable by design. *)
          ()
      | Value.Int txn_id, Value.Null ->
          violations := Orphan_row_version { table; txn_id } :: !violations
      | Value.Null, Value.Int txn_id ->
          (* Transaction recorded in the system table but no surviving row
             versions in this table: a violation only if the entry claims a
             root for the table. *)
          let roots_json = as_string_exn "table_roots" (get_cell rel row "roots") in
          (match recorded_root roots_json with
          | Some recorded ->
              violations :=
                Table_root_mismatch
                  { txn_id; table; recorded = Some recorded; computed = None }
                :: !violations
          | None -> ())
      | Value.Int txn_id, Value.Int _ ->
          (match as_int_opt (get_cell rel row "cnt") with
          | Some n -> versions := !versions + n
          | None -> ());
          let computed = as_string_exn "computed" (get_cell rel row "computed") in
          let roots_json = as_string_exn "table_roots" (get_cell rel row "roots") in
          (match recorded_root roots_json with
          | Some recorded ->
              if not (String.equal recorded computed) then
                violations :=
                  Table_root_mismatch
                    {
                      txn_id;
                      table;
                      recorded = Some recorded;
                      computed = Some computed;
                    }
                  :: !violations
          | None ->
              violations :=
                Table_root_mismatch
                  { txn_id; table; recorded = None; computed = Some computed }
                :: !violations)
      | _ -> Types.errorf "verifier internal: table roots join")
    rel.Sqlexec.Rel.rows;
  (!violations, !versions)

(* ------------------------------------------------------------------ *)
(* Invariant 5: non-clustered indexes are equivalent to their base table. *)

let pair_hash key pk =
  match
    Sqlexec.Builtins.ledgerhash (Array.to_list key @ Array.to_list pk)
  with
  | Value.String hex -> Hex.decode hex
  | _ -> assert false

let check_indexes_of_store store =
  let violations = ref [] in
  let table = Table_store.name store in
  List.iter
    (fun ({ Table_store.index_name; key_ordinals } : Table_store.index) ->
      let base_pairs =
        Table_store.fold
          (fun acc row ->
            let key = Row.project row key_ordinals in
            let pk = Table_store.primary_key store row in
            (Array.append key pk, pk) :: acc)
          [] store
        |> List.sort (fun (a, _) (b, _) -> Row.compare a b)
      in
      let index_pairs = Table_store.index_scan store ~index_name in
      let root pairs =
        Merkle.Streaming.(
          root
            (add_leaves empty (List.map (fun (k, pk) -> pair_hash k pk) pairs)))
      in
      if not (String.equal (root base_pairs) (root index_pairs)) then
        violations := Index_mismatch { table; index = index_name } :: !violations)
    (Table_store.indexes store);
  !violations

let check_indexes lt =
  check_indexes_of_store (Ledger_table.main lt)
  @
  match Ledger_table.history lt with
  | Some h -> check_indexes_of_store h
  | None -> []

(* ------------------------------------------------------------------ *)

let verify ?tables ?jobs db ~digests =
  let jobs =
    (* On a single-core host worker domains cannot run in parallel and
       only pay spawn/GC overhead — ignore an explicit --jobs and verify
       serially (mirrors Merkle.Parallel's guard). *)
    if Domain.recommended_domain_count () = 1 then 1
    else
      match jobs with
      | Some j -> j
      | None -> Domain.recommended_domain_count ()
  in
  let selected lt =
    match tables with
    | None -> true
    | Some names ->
        List.exists
          (fun n ->
            String.equal (String.lowercase_ascii n)
              (String.lowercase_ascii (Ledger_table.name lt)))
          names
  in
  let v1 = check_digests db digests in
  let v2, blocks_checked = check_chain db in
  let v3, transactions_checked = check_block_roots db in
  let per_table lt =
    let v4, versions = check_table_roots db lt in
    let v5 = check_indexes lt in
    (v4 @ v5, versions)
  in
  let targets = List.filter selected (Database.ledger_tables db) in
  let table_results =
    if jobs <= 1 || List.length targets <= 1 then List.map per_table targets
    else begin
      (* Warm the per-schema memo caches before spawning so the domains
         only read shared state. *)
      List.iter
        (fun lt ->
          ignore (Ledger_table.user_ordinals lt : int list);
          ignore (System_columns.ordinals (Ledger_table.schema lt)))
        targets;
      (* Round-robin the tables over the domains. *)
      let buckets = Array.make (min jobs (List.length targets)) [] in
      List.iteri
        (fun i lt ->
          let b = i mod Array.length buckets in
          buckets.(b) <- lt :: buckets.(b))
        targets;
      let domains =
        Array.map
          (fun bucket -> Domain.spawn (fun () -> List.map per_table bucket))
          buckets
      in
      Array.to_list domains |> List.concat_map Domain.join
    end
  in
  let v45, versions_checked =
    List.fold_left
      (fun (acc, count) (vs, versions) -> (acc @ vs, count + versions))
      ([], 0) table_results
  in
  let verified_upto_block =
    List.fold_left
      (fun acc (d : Digest.t) ->
        if String.equal d.database_id (Database.database_id db) then
          match acc with
          | None -> Some d.block_id
          | Some b -> Some (max b d.block_id)
        else acc)
      None digests
  in
  {
    violations = v1 @ v2 @ v3 @ v45;
    blocks_checked;
    transactions_checked;
    versions_checked;
    verified_upto_block;
  }

let verify_digest_chain db ~older ~newer =
  let violations = ref [] in
  if newer.Digest.block_id < older.Digest.block_id then
    violations :=
      Chain_gap { block_id = newer.Digest.block_id; missing = older.Digest.block_id }
      :: !violations
  else begin
    let blocks = Database_ledger.blocks (Database.ledger db) in
    let find id =
      List.find_opt (fun (b : Types.block) -> b.block_id = id) blocks
    in
    let check_digest (d : Digest.t) =
      match find d.block_id with
      | None ->
          violations := Digest_block_missing { block_id = d.block_id } :: !violations
      | Some b ->
          let computed = Database_ledger.block_hash b in
          if not (String.equal computed d.block_hash) then
            violations :=
              Digest_mismatch
                {
                  block_id = d.block_id;
                  expected = Hex.encode d.block_hash;
                  computed = Hex.encode computed;
                }
              :: !violations
    in
    check_digest older;
    check_digest newer;
    (* Recompute every link between the two digests. *)
    for id = older.Digest.block_id + 1 to newer.Digest.block_id do
      match (find (id - 1), find id) with
      | Some prev, Some b ->
          let computed_prev = Database_ledger.block_hash prev in
          if not (String.equal b.prev_hash computed_prev) then
            violations :=
              Chain_broken
                {
                  block_id = id;
                  recorded_prev = Hex.encode b.prev_hash;
                  computed_prev = Hex.encode computed_prev;
                }
              :: !violations
      | _ -> violations := Chain_gap { block_id = id; missing = id - 1 } :: !violations
    done
  end;
  if !violations = [] then Ok () else Error !violations

(* ------------------------------------------------------------------ *)

let violation_to_string = function
  | Digest_block_missing { block_id } ->
      Printf.sprintf "digest references missing block %d" block_id
  | Digest_mismatch { block_id; expected; computed } ->
      Printf.sprintf "digest mismatch on block %d: expected %s, computed %s"
        block_id expected computed
  | Digest_foreign { database_id } ->
      Printf.sprintf "digest belongs to another database (%s)" database_id
  | Chain_gap { block_id; missing } ->
      Printf.sprintf "block chain gap at block %d (missing block %d)" block_id
        missing
  | Chain_broken { block_id; _ } ->
      Printf.sprintf "block %d: previous-block hash link broken" block_id
  | Genesis_prev_not_null { recorded } ->
      Printf.sprintf "block 0 has non-null previous hash %s" recorded
  | Block_root_mismatch { block_id; _ } ->
      Printf.sprintf "block %d: transaction Merkle root mismatch" block_id
  | Block_count_mismatch { block_id; recorded; actual } ->
      Printf.sprintf "block %d: recorded %d transactions, found %d" block_id
        recorded actual
  | Orphan_transaction { txn_id; block_id } ->
      Printf.sprintf "transaction %d references missing block %d" txn_id
        block_id
  | Table_root_mismatch { txn_id; table; _ } ->
      Printf.sprintf "transaction %d: row-version root mismatch in table %s"
        txn_id table
  | Orphan_row_version { table; txn_id } ->
      Printf.sprintf "table %s has row versions from unrecorded transaction %d"
        table txn_id
  | Index_mismatch { table; index } ->
      Printf.sprintf "index %s on %s diverges from the base table" index table

let pp_report fmt r =
  Format.fprintf fmt
    "verification: %s (%d blocks, %d transactions, %d row versions checked%s)"
    (if ok r then "OK"
     else Printf.sprintf "%d violation(s)" (List.length r.violations))
    r.blocks_checked r.transactions_checked r.versions_checked
    (match r.verified_upto_block with
    | Some b -> Printf.sprintf "; anchored up to block %d" b
    | None -> "; no digest anchor");
  List.iter
    (fun v -> Format.fprintf fmt "@.  - %s" (violation_to_string v))
    r.violations
