(** Ledger tables (paper §2.1, §3.1, §3.2).

    An updateable ledger table is a pair of physical tables: the main table
    holding current row versions and a history table (same extended schema)
    holding superseded versions. Append-only ledger tables have no history
    table and reject updates and deletes. Both carry the four hidden system
    columns tracking the creating and deleting (transaction, sequence)
    pairs.

    This module owns version hashing. It does not assign transaction ids or
    maintain Merkle trees — that is {!Txn}'s job; functions here take the
    already-assigned (txn_id, seq) and return the hashes that the caller
    must fold into the transaction's per-table tree. *)

type kind = Append_only | Updateable

type t

val create :
  name:string ->
  table_id:int ->
  schema:Relation.Schema.t ->
  key_ordinals:int list ->
  kind:kind ->
  t
(** [schema]/[key_ordinals] describe the user-visible columns; the system
    columns are appended internally. Raises [Invalid_argument] on reserved
    column names. *)

val name : t -> string
val rename : t -> string -> unit
(** Logical drop (§3.5.2) renames rather than deletes. *)

val table_id : t -> int
val kind : t -> kind
val schema : t -> Relation.Schema.t
(** The extended schema (user + system columns). *)

val user_ordinals : t -> int list
(** Ordinals of the non-system (user) columns in schema order, including
    columns added later and hidden (dropped) ones. *)

val user_arity : t -> int
(** Number of user columns (length of {!user_ordinals}). *)

val main : t -> Storage.Table_store.t
val history : t -> Storage.Table_store.t option

val row_count : t -> int
val history_count : t -> int

(** {1 Version hashing} *)

val hash_created : ?ctx:Ledger_crypto.Sha256.t -> t -> Relation.Row.t -> string
(** Hash of a stored row as of its creation: deletion columns masked to
    NULL. [ctx] is an optional reusable scratch context; when given, the
    hash streams through it without intermediate allocations. *)

val hash_deleted : ?ctx:Ledger_crypto.Sha256.t -> t -> Relation.Row.t -> string
(** Hash of a deleted version, deletion columns included. [ctx] as in
    {!hash_created}. *)

(** {1 Version-level DML (called by Txn)} *)

val extend_user_row : t -> Relation.Row.t -> Relation.Row.t
(** Build a full stored row from user-column values (in {!user_ordinals}
    order); system columns are NULL. Raises [Invalid_argument] on arity
    mismatch. *)

val user_row : t -> Relation.Row.t -> Relation.Row.t
(** Project a stored row back to its user-column values. *)

val insert_version :
  ?ctx:Ledger_crypto.Sha256.t ->
  t -> txn_id:int -> seq:int -> Relation.Row.t -> Relation.Row.t * string
(** Store a new current version of the given user row; returns the stored
    row and its creation hash. [ctx] is the caller's reusable hash context
    (per-transaction scratch in {!Txn}). Raises
    [Storage.Table_store.Duplicate_key]. *)

val delete_version :
  ?ctx:Ledger_crypto.Sha256.t ->
  t -> txn_id:int -> seq:int -> key:Relation.Row.t -> Relation.Row.t * string
(** Delete the current version with the given primary key: stamp its
    deletion columns, move it to the history table, and return the moved row
    with its deletion hash. Raises {!Types.Ledger_error} for append-only
    tables and [Storage.Table_store.Not_found_key] when absent. *)

val find : t -> key:Relation.Row.t -> Relation.Row.t option
val current_rows : t -> Relation.Row.t list
val history_rows : t -> Relation.Row.t list

(** {1 Verification and view support} *)

val versions : t -> Types.version list
(** Every row-version operation recorded in the table: an INSERT per stored
    version (main and history) and a DELETE per history version, each with
    its (transaction, sequence) and recomputed hash. Unordered. *)

val undo_insert : t -> key:Relation.Row.t -> unit
(** Rollback helper: remove a version previously added by
    {!insert_version}. *)

val undo_delete : t -> Relation.Row.t -> unit
(** Rollback helper: move a version back from history to the main table and
    clear its deletion columns. The argument is the row returned by
    {!delete_version}. *)

val unsafe_assemble :
  name:string ->
  table_id:int ->
  kind:kind ->
  main:Storage.Table_store.t ->
  history:Storage.Table_store.t option ->
  t
(** Rebuild a handle around already-populated stores (snapshot loading).
    The caller is responsible for the stores carrying a correctly extended
    schema. *)

val snapshot : t -> t
(** O(1) frozen view over the copy-on-write stores (main and history).
    Read-only. *)

val unsafe_copy : t -> t
(** Deep copy (backup support). "Unsafe" only in that the copy shares the
    table id with the original. *)
