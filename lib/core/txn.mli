(** Transactions over ledger tables (paper §3.2).

    Every DML operation stamps the affected row versions with the
    transaction id and a per-transaction operation sequence number, hashes
    them, and appends the hashes to a per-table streaming Merkle tree. On
    commit the tree roots are recorded as the transaction's entry in the
    Database Ledger. Savepoints snapshot the O(log N) Merkle state
    (§3.2.1), the sequence counter and the undo position, enabling partial
    rollbacks.

    The engine executes transactions one at a time (changes apply in place
    with an undo log); concurrency control is out of scope for this
    reproduction and orthogonal to the ledger design. *)

type t

type savepoint

val id : t -> int
val user : t -> string
val is_active : t -> bool

val begin_txn : ledger:Database_ledger.t -> user:string -> clock:(unit -> float) -> t

val begin_staged_txn :
  ledger:Database_ledger.t -> user:string -> clock:(unit -> float) -> t
(** Like {!begin_txn}, but the transaction is *staged* (group commit): it
    writes nothing to the WAL itself. Its BEGIN record — like its DATA and
    COMMIT — is produced by {!stage_commit} for a commit leader to publish
    as one batch; rolling back a staged transaction logs nothing. *)

(** {1 DML on ledger tables} *)

val insert : t -> Ledger_table.t -> Relation.Row.t -> unit
(** Insert a user row. Raises {!Types.Ledger_error} when the transaction is
    not active, [Invalid_argument]/[Storage.Table_store.Duplicate_key] on
    bad rows. *)

val update : t -> Ledger_table.t -> key:Relation.Row.t -> Relation.Row.t -> unit
(** Replace the row with the given primary key by a new user row (the old
    version moves to history; the new row may change the key). Hashes the
    version before and after, in that order. *)

val delete : t -> Ledger_table.t -> key:Relation.Row.t -> unit

(** {1 DML on regular (non-ledger) tables} *)

val plain_insert : t -> Storage.Table_store.t -> Relation.Row.t -> unit
val plain_update : t -> Storage.Table_store.t -> Relation.Row.t -> unit
val plain_delete : t -> Storage.Table_store.t -> key:Relation.Row.t -> unit

(** {1 Savepoints and rollback} *)

val savepoint : t -> savepoint
val rollback_to : t -> savepoint -> unit
(** Undo every change made after the savepoint and restore the Merkle
    state. A savepoint may be rolled back to repeatedly; rolling back to an
    outer savepoint invalidates inner ones. *)

val rollback : t -> unit
(** Abort: undo everything, log ABORT. *)

val commit : t -> Types.txn_entry
(** Compute the per-table Merkle roots, append the entry to the Database
    Ledger and return it. *)

val stage_commit : t -> Types.txn_entry * Aries.Log_record.t list
(** The validate-and-stage half of {!commit} for transactions begun with
    {!begin_staged_txn}: computes the table roots, performs every
    in-memory ledger effect, marks the transaction committed, and returns
    the entry together with the WAL records (BEGIN, DATA when the
    transaction wrote, COMMIT, and a BLOCK_CLOSE when the block filled)
    for a commit leader to publish under a single durability barrier.
    The records must reach the log, in order, before any other record is
    appended; a publish failure cannot be rolled back and must be treated
    as a crash. Raises {!Types.Ledger_error} on non-staged transactions. *)

(** {1 Two-phase commit (participant side)} *)

val prepare : t -> gid:string -> (int * string) list
(** Vote yes in a two-phase commit: append the transaction's logical redo
    and a PREPARE marker to the WAL, fsync, and freeze the transaction —
    further DML raises until a decision. The in-memory effects stay in
    place, so the caller must keep holding the write lock across the
    in-doubt window. Returns the per-table Merkle roots recorded in the
    marker. Raises {!Types.Ledger_error} on staged or inactive
    transactions. *)

val prepared_gid : t -> string option
(** The global transaction id this transaction is prepared under, if any. *)

val decide_commit : t -> Types.txn_entry
(** The coordinator decided commit: append the COMMIT record (which is the
    durable decision marker) and the ledger entry, exactly like {!commit}.
    Raises {!Types.Ledger_error} unless the transaction is prepared. *)

(** Aborting a prepared transaction is {!rollback}: its ABORT record is
    the durable abort-decision marker. *)

val table_root : t -> Ledger_table.t -> string
(** Current Merkle root of this transaction's updates to the given table
    (before commit); [Merkle.Streaming.empty_root] when untouched. *)

val operation_count : t -> int
(** Sequence numbers consumed so far. *)
