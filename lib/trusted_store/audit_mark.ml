(* Persisted auditor high-water mark.

   The audit daemon's only durable state: the newest block it verified
   clean, as (block id, block hash) plus the wall-clock time it advanced.
   Restarting the daemon resumes from this mark instead of re-walking the
   chain — a full verify stays a one-time bootstrap. Written atomically
   (tmp + rename) like the WORM mirror: a crash mid-save must not leave a
   torn mark that silently resets the auditor to genesis. *)

module Incremental_audit = Sql_ledger.Incremental_audit

let points = "audit.mark"
let () = Fault.Fsutil.register_atomic_points points

type t = { mark : Incremental_audit.mark; updated : float }

let to_json t =
  Sjson.Obj
    [
      ("mark", Incremental_audit.mark_to_json t.mark);
      ("updated", Sjson.Float t.updated);
    ]

let of_json json =
  match Incremental_audit.mark_of_json (Sjson.member "mark" json) with
  | Error _ as e -> e
  | Ok mark ->
      let updated =
        match Sjson.member "updated" json with
        | Sjson.Float f -> f
        | Sjson.Int i -> float_of_int i
        | _ -> 0.
      in
      Ok { mark; updated }

let save ?(clock = Unix.gettimeofday) ~path mark =
  Fault.Fsutil.atomic_write ~point_prefix:points ~path
    (Sjson.to_string (to_json { mark; updated = clock () }))

(* [Ok None] = no mark yet (first run): bootstrap. A present-but-broken
   mark is an error, not a silent bootstrap — resetting to genesis on
   corruption would let an attacker force rescans (or worse, hide a
   tampered prefix behind a fresh mark of their choosing). *)
let load ~path =
  if not (Sys.file_exists path) then Ok None
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error e -> Error e
    | contents -> (
        match Sjson.of_string contents with
        | exception Sjson.Parse_error e ->
            Error (Printf.sprintf "audit mark %s is not JSON: %s" path e)
        | json -> (
            match of_json json with
            | Ok t -> Ok (Some t)
            | Error e -> Error e))
