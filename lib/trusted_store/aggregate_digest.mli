(** Aggregate digests of a sharded deployment: a Merkle root over the
    per-shard block hashes (in shard order) wrapping the per-shard digest
    documents, so one published root covers every shard while
    verification fans out per shard. *)

type t = {
  epoch : int;  (** shard-map epoch the fan-out ran under *)
  root : string;  (** raw 32-byte Merkle root over shard block hashes *)
  digest_time : float;
  shards : Sql_ledger.Digest.t list;  (** per-shard digests, shard order *)
}

val of_shards :
  epoch:int -> digest_time:float -> Sql_ledger.Digest.t list -> t
(** Raises [Invalid_argument] on an empty list. *)

val shard_count : t -> int

val root_of_digests : Sql_ledger.Digest.t list -> string
(** The Merkle root over the digests' block hashes, in list order. *)

val check : t -> (unit, string) result
(** Recompute the root from the embedded shard digests. *)

val is_aggregate : Sjson.t -> bool
(** Whether a digest document is an aggregate (vs a single-node digest). *)

val to_json : t -> Sjson.t
val of_json : Sjson.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
val equal : t -> t -> bool
