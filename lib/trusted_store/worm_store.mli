(** Write-once-read-many blob store — the stand-in for Azure Immutable Blob
    Storage (paper §2.4, §3.6).

    Blobs are append-only: chunks can be added but never modified or
    removed, and a sealed blob rejects further appends. Overwrite attempts
    are counted so tests can assert that the immutability property was
    actually exercised. Optionally file-backed (one file per blob under a
    directory), and optionally HMAC-authenticated with a customer-held key —
    the "store digests outside the cloud, signed" option of §2.4. *)

type t

val create : ?dir:string -> ?hmac_key:string -> unit -> t
(** [dir]: mirror blobs to disk. [hmac_key]: authenticate every chunk. *)

val escape_blob_name : string -> string
(** Injective percent-escaping of a blob name into a safe file name:
    distinct blob names always map to distinct mirror files (['/'], ['\\'],
    ['%'], [':'] and control characters become [%XX]). Exposed for tests. *)

val append : t -> blob:string -> string -> (unit, string) result
(** Add a chunk to a blob (creating the blob if needed). Fails on sealed
    blobs. *)

val seal : t -> blob:string -> unit

val read : t -> blob:string -> (string list, string) result
(** All chunks in append order. Verifies HMACs when a key is set; a
    tampered mirror file surfaces here as an error. *)

val list_blobs : t -> string list
(** Sorted. *)

val exists : t -> blob:string -> bool

val rejected_writes : t -> int
(** Number of refused modification attempts so far. *)

module Hostile : sig
  val corrupt_chunk : t -> blob:string -> index:int -> string -> bool
  (** What a *compromised* store would do — flips a stored chunk in place,
      bypassing the WORM discipline. Returns false when absent. With an
      HMAC key set, subsequent reads detect the corruption. *)
end
