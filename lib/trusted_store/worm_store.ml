module Hmac = Ledger_crypto.Hmac
module Hex = Ledger_crypto.Hex

type blob = { mutable chunks : string list (* newest first *); mutable sealed : bool }

type t = {
  blobs : (string, blob) Hashtbl.t;
  dir : string option;
  hmac_key : string option;
  mutable rejected : int;
}

let mirror_points = "worm.mirror"

let () = Fault.Fsutil.register_atomic_points mirror_points

let create ?dir ?hmac_key () =
  Option.iter Fault.Fsutil.mkdir_p dir;
  { blobs = Hashtbl.create 16; dir; hmac_key; rejected = 0 }

let encode_chunk t data =
  match t.hmac_key with
  | None -> data
  | Some key -> Hex.encode (Hmac.mac ~key data) ^ ":" ^ data

let decode_chunk t chunk =
  match t.hmac_key with
  | None -> Ok chunk
  | Some key -> (
      match String.index_opt chunk ':' with
      | None -> Error "chunk missing authentication tag"
      | Some i ->
          let tag_hex = String.sub chunk 0 i in
          let data = String.sub chunk (i + 1) (String.length chunk - i - 1) in
          if
            Hex.is_hex tag_hex
            && Hmac.verify ~key ~msg:data ~tag:(Hex.decode tag_hex)
          then Ok data
          else Error "chunk failed authentication: store was tampered with")

(* Blob names may contain path separators and other characters that are
   not safe in a file name. Percent-escape them injectively — distinct
   blob names must map to distinct files ("a/b" and "a_b" used to collide
   when '/' was simply flattened to '_'). *)
let escape_blob_name blob =
  let unsafe = function
    | '/' | '\\' | '%' | ':' -> true
    | c -> Char.code c < 0x20 || Char.code c = 0x7f
  in
  if String.exists unsafe blob then (
    let buf = Buffer.create (String.length blob + 8) in
    String.iter
      (fun c ->
        if unsafe c then Printf.bprintf buf "%%%02X" (Char.code c)
        else Buffer.add_char buf c)
      blob;
    Buffer.contents buf)
  else blob

let file_name t blob =
  Option.map
    (fun d -> Filename.concat d (escape_blob_name blob ^ ".blob"))
    t.dir

let mirror t blob_name b =
  match file_name t blob_name with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 1024 in
      List.iter
        (fun chunk ->
          Buffer.add_string buf chunk;
          Buffer.add_char buf '\n')
        (List.rev b.chunks);
      (* Atomic rewrite: a crash mid-mirror must not leave a torn mirror
         file masquerading as the write-once record of the digests. *)
      Fault.Fsutil.atomic_write ~point_prefix:mirror_points ~path
        (Buffer.contents buf)

let append t ~blob data =
  let b =
    match Hashtbl.find_opt t.blobs blob with
    | Some b -> b
    | None ->
        let b = { chunks = []; sealed = false } in
        Hashtbl.add t.blobs blob b;
        b
  in
  if b.sealed then begin
    t.rejected <- t.rejected + 1;
    Error (Printf.sprintf "blob %s is sealed (immutable)" blob)
  end
  else begin
    b.chunks <- encode_chunk t data :: b.chunks;
    mirror t blob b;
    Ok ()
  end

let seal t ~blob =
  match Hashtbl.find_opt t.blobs blob with
  | Some b -> b.sealed <- true
  | None -> Hashtbl.add t.blobs blob { chunks = []; sealed = true }

let read t ~blob =
  match Hashtbl.find_opt t.blobs blob with
  | None -> Error (Printf.sprintf "no blob named %s" blob)
  | Some b ->
      let rec go acc = function
        | [] -> Ok acc
        | chunk :: rest -> (
            match decode_chunk t chunk with
            | Ok data -> go (data :: acc) rest
            | Error e -> Error e)
      in
      go [] b.chunks

let list_blobs t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.blobs []
  |> List.sort String.compare

let exists t ~blob = Hashtbl.mem t.blobs blob

let rejected_writes t = t.rejected

module Hostile = struct
  let corrupt_chunk t ~blob ~index data =
    match Hashtbl.find_opt t.blobs blob with
    | None -> false
    | Some b ->
        let chunks = Array.of_list (List.rev b.chunks) in
        if index < 0 || index >= Array.length chunks then false
        else begin
          (* Deliberately skip encode_chunk: a hostile write does not know
             the customer's HMAC key. *)
          chunks.(index) <- data;
          b.chunks <- List.rev (Array.to_list chunks);
          true
        end
end
