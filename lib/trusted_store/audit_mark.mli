(** Persisted auditor high-water mark: the newest block the audit daemon
    verified clean, written atomically so restarts resume instead of
    rescanning (full verify stays a one-time bootstrap). *)

type t = { mark : Sql_ledger.Incremental_audit.mark; updated : float }

val to_json : t -> Sjson.t
val of_json : Sjson.t -> (t, string) result

val save :
  ?clock:(unit -> float) ->
  path:string ->
  Sql_ledger.Incremental_audit.mark ->
  unit
(** Atomic write (tmp + rename). *)

val load : path:string -> (t option, string) result
(** [Ok None] when no mark exists yet (first run → bootstrap). A
    present-but-unreadable mark is an [Error], never a silent reset to
    genesis. *)
