(* The shard-root digest tree of a sharded deployment.

   A single-node digest attests one database through its latest block
   hash. A sharded deployment has one ledger per shard, so the
   coordinator publishes an *aggregate* digest: a Merkle root over the
   per-shard block hashes, taken in shard order, plus the per-shard
   digest documents themselves. One published root then covers every
   shard — tampering with any shard's block store changes that shard's
   block hash, which changes the aggregate root — while verification can
   still fan out per shard, feeding each embedded digest to the shard
   that owns it.

   The document carries the shard-map epoch it was taken under so a
   verifier knows which topology the shard order refers to. *)

module Hex = Ledger_crypto.Hex
module Digest = Sql_ledger.Digest

type t = {
  epoch : int;  (** shard-map epoch the fan-out ran under *)
  root : string;  (** raw 32-byte Merkle root over shard block hashes *)
  digest_time : float;
  shards : Digest.t list;  (** per-shard digests, in shard order *)
}

let shard_count t = List.length t.shards

let root_of_digests digests =
  Merkle.Tree.root
    (Merkle.Tree.of_leaves
       (List.map (fun d -> d.Digest.block_hash) digests))

let of_shards ~epoch ~digest_time shards =
  if shards = [] then invalid_arg "Aggregate_digest.of_shards: no shards";
  { epoch; root = root_of_digests shards; digest_time; shards }

(* A digest doc is wrapped (not replaced): recomputing the root from the
   embedded per-shard digests must reproduce the stored root, otherwise
   the aggregate was assembled dishonestly. *)
let check t =
  if t.shards = [] then Error "aggregate digest embeds no shard digests"
  else if String.equal (root_of_digests t.shards) t.root then Ok ()
  else Error "aggregate root does not match the embedded shard digests"

let to_json t =
  Sjson.Obj
    [
      ("kind", Sjson.String "aggregate");
      ("epoch", Sjson.Int t.epoch);
      ("shard_count", Sjson.Int (shard_count t));
      ("root", Sjson.String (Hex.encode t.root));
      ("digest_time", Sjson.Float t.digest_time);
      ("shards", Sjson.List (List.map Digest.to_json t.shards));
    ]

let is_aggregate json =
  match Sjson.member "kind" json with
  | Sjson.String "aggregate" -> true
  | _ -> false

let float_member name json =
  match Sjson.member name json with
  | Sjson.Float f -> f
  | Sjson.Int i -> float_of_int i
  | _ -> failwith ("aggregate field " ^ name ^ " must be a number")

let of_json json =
  try
    if not (is_aggregate json) then failwith "not an aggregate digest";
    let root_hex = Sjson.get_string (Sjson.member "root" json) in
    if not (Hex.is_hex root_hex) then failwith "root is not hex";
    let shards =
      match Sjson.member "shards" json with
      | Sjson.List items ->
          List.map
            (fun j ->
              match Digest.of_json j with
              | Ok d -> d
              | Error e -> failwith e)
            items
      | _ -> failwith "missing shard digest list"
    in
    let declared =
      match Sjson.member "shard_count" json with
      | Sjson.Int n -> n
      | _ -> List.length shards
    in
    if declared <> List.length shards then
      failwith "shard_count disagrees with the embedded digest list";
    Ok
      {
        epoch = Sjson.get_int (Sjson.member "epoch" json);
        root = Hex.decode root_hex;
        digest_time = float_member "digest_time" json;
        shards;
      }
  with
  | Failure e | Invalid_argument e -> Error ("malformed aggregate digest: " ^ e)

let to_string t = Sjson.to_string ~pretty:true (to_json t)

let of_string s =
  match Sjson.of_string s with
  | exception Sjson.Parse_error e -> Error ("aggregate digest is not JSON: " ^ e)
  | json -> of_json json

let equal a b =
  a.epoch = b.epoch
  && String.equal a.root b.root
  && List.length a.shards = List.length b.shards
  && List.for_all2 Digest.equal a.shards b.shards
