(* Request dispatch: maps one decoded wire request onto the ledger
   engine, under the locking discipline described in Rwlock.

   Sessions are the unit of transaction state. An explicit BEGIN takes
   the exclusive lock and parks the open [Txn.t] on the session, so the
   transaction's statements — which mutate tables in place — span
   requests safely; COMMIT/ROLLBACK (or session teardown: disconnect,
   idle timeout, server drain) releases it. Auto-commit statements take
   the lock only for their own duration. *)

open Sql_ledger
module Protocol = Wire.Protocol

type t = {
  durable : Durable.t;
  lock : Rwlock.t;
  metrics : Metrics.t;
  server_name : string;
  queue : Commit_queue.t option;
      (* group commit; [None] runs the legacy commit-per-fsync path *)
}

type session = {
  s_id : int;
  mutable s_user : string;
  mutable s_hello : bool;
  mutable s_txn : Txn.t option;
}

let create ?(group_commit_window = 0.0) ~durable ~metrics ~server_name () =
  let lock = Rwlock.create () in
  let queue =
    if group_commit_window > 0.0 then
      Some
        (Commit_queue.create ~window:group_commit_window
           ~ledger:(Database.ledger (Durable.db durable))
           ~metrics)
    else None
  in
  { durable; lock; metrics; server_name; queue }

(* Direct WAL writers — explicit transactions, DDL, checkpoints, digests
   (they append records immediately) — must drain the commit queue once
   they hold the writer lock: the commit leader appends to the WAL
   without holding the engine lock, and its batches must reach the log
   before any record logged here. While the writer lock is held no new
   ticket can be enqueued, so the log stays quiescent until release. *)
let flush_queue t = Option.iter Commit_queue.flush t.queue

let new_session ~id = { s_id = id; s_user = Printf.sprintf "client-%d" id; s_hello = false; s_txn = None }

let db t = Durable.db t.durable

let err code fmt =
  Printf.ksprintf
    (fun message -> Protocol.Error_r { code; message })
    fmt

(* A session in an explicit transaction already holds the exclusive
   lock, so nested acquisition would self-deadlock: run directly. *)
let with_read t s f =
  match s.s_txn with Some _ -> f () | None -> Rwlock.read t.lock f

let with_write t s f =
  match s.s_txn with
  | Some _ -> f ()
  | None ->
      Rwlock.write t.lock (fun () ->
          flush_queue t;
          f ())

let rows_of_rel rel =
  Protocol.Rows_r
    {
      columns = Sqlexec.Rel.column_names rel;
      rows = List.map Relation.Row.to_list rel.Sqlexec.Rel.rows;
    }

let result_to_response = function
  | Dml.Rows rel -> rows_of_rel rel
  | Dml.Affected n -> Protocol.Affected_r n

(* Engine exceptions -> typed wire errors. Fault-injection exceptions
   must keep propagating: the session loop owns crash semantics. *)
let guard f =
  try f () with
  | Sqlexec.Parser.Parse_error e | Sqlexec.Lexer.Lex_error e ->
      err Protocol.Parse_error "%s" e
  | Sqlexec.Executor.Exec_error e | Types.Ledger_error e ->
      err Protocol.Exec_error "%s" e
  | Storage.Table_store.Duplicate_key k ->
      err Protocol.Exec_error "duplicate key %s" k
  | Storage.Table_store.Not_found_key k ->
      err Protocol.Exec_error "no such key %s" k
  | Failure e -> err Protocol.Exec_error "%s" e
  | (Fault.Injected_crash _ | Fault.Injected_error _) as e -> raise e

let exec_sql t s sql =
  guard (fun () ->
      let statement = Sqlexec.Parser.parse_statement sql in
      let run () =
        result_to_response
          (Dml.execute_statement ?txn:s.s_txn (db t) ~user:s.s_user statement)
      in
      match statement with
      | Sqlexec.Ast.Select _ -> with_read t s run
      | _ -> (
          match (s.s_txn, t.queue) with
          | Some _, _ | None, None -> with_write t s run
          | None, Some q ->
              (* Group commit: execute and stage under the exclusive
                 lock, enqueue before releasing it (batch order =
                 execution order), then wait for the commit leader to
                 publish the batch under one fsync. *)
              Rwlock.lock_write t.lock;
              let outcome =
                try
                  let result, staged =
                    Dml.execute_statement_staged (db t) ~user:s.s_user
                      statement
                  in
                  let ticket =
                    Option.map
                      (fun (st : Dml.staged) ->
                        Commit_queue.enqueue q ~entry:st.staged_entry
                          ~records:st.staged_records)
                      staged
                  in
                  Ok (result, ticket)
                with e -> Error e
              in
              Rwlock.unlock_write t.lock;
              (match outcome with
              | Error e -> raise e
              | Ok (result, ticket) ->
                  Option.iter (Commit_queue.await q) ticket;
                  result_to_response result)))

let query_sql t s sql =
  guard (fun () ->
      match Sqlexec.Parser.parse_statement sql with
      | Sqlexec.Ast.Select _ as statement ->
          with_read t s (fun () ->
              result_to_response
                (Dml.execute_statement ?txn:s.s_txn (db t) ~user:s.s_user
                   statement))
      | _ -> err Protocol.Bad_request "query accepts SELECT statements only")

let begin_txn t s =
  match s.s_txn with
  | Some txn ->
      err Protocol.Txn_state "transaction %d is already open" (Txn.id txn)
  | None ->
      Rwlock.lock_write t.lock;
      (* The explicit transaction logs BEGIN now and holds the lock until
         COMMIT/ROLLBACK, so one flush here keeps the WAL quiescent for
         the transaction's whole lifetime. *)
      flush_queue t;
      let txn = Database.begin_txn (db t) ~user:s.s_user in
      s.s_txn <- Some txn;
      Protocol.Txn_r { txn_id = Some (Txn.id txn) }

let end_txn t s ~commit =
  match s.s_txn with
  | None -> err Protocol.Txn_state "no transaction is open"
  | Some txn ->
      let finish resp =
        s.s_txn <- None;
        Rwlock.unlock_write t.lock;
        resp
      in
      finish
        (guard (fun () ->
             if commit then begin
               let entry = Txn.commit txn in
               Protocol.Txn_r { txn_id = Some entry.Types.txn_id }
             end
             else begin
               Txn.rollback txn;
               Protocol.Txn_r { txn_id = None }
             end))

let generate_digest t s =
  (* Closing the open block mutates the ledger: exclusive. *)
  with_write t s (fun () ->
      match Database.generate_digest (db t) with
      | Some d -> Protocol.Digest_r (Digest.to_json d)
      | None -> err Protocol.Exec_error "nothing committed yet")

let generate_receipt t s ~txn_id =
  with_read t s (fun () ->
      match Receipt.generate (db t) ~txn_id with
      | Ok r -> Protocol.Receipt_r (Receipt.to_json r)
      | Error e -> err Protocol.Exec_error "%s" e)

let run_verify t s ~tables ~digest_jsons =
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | j :: rest -> (
        match Digest.of_json j with
        | Ok d -> parse (d :: acc) rest
        | Error e -> Error e)
  in
  match parse [] digest_jsons with
  | Error e -> err Protocol.Bad_request "%s" e
  | Ok digests -> (
      match
        List.find_opt
          (fun n -> Database.find_ledger_table (db t) n = None)
          tables
      with
      | Some missing -> err Protocol.Exec_error "no such ledger table: %s" missing
      | None ->
          let tables = if tables = [] then None else Some tables in
          with_read t s (fun () ->
              let report = Verifier.verify ?tables (db t) ~digests in
              Protocol.Verify_r
                {
                  vs_ok = Verifier.ok report;
                  vs_blocks = report.Verifier.blocks_checked;
                  vs_transactions = report.Verifier.transactions_checked;
                  vs_versions = report.Verifier.versions_checked;
                  vs_violations =
                    List.map Verifier.violation_to_string
                      report.Verifier.violations;
                }))

let create_table t s ~name ~columns ~key =
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | (cname, ty) :: rest -> (
        match Relation.Datatype.of_string ty with
        | Some dtype -> build (Relation.Column.make cname dtype :: acc) rest
        | None -> Error ty)
  in
  match build [] columns with
  | Error ty -> err Protocol.Bad_request "unknown column type %S" ty
  | Ok cols ->
      guard (fun () ->
          with_write t s (fun () ->
              ignore
                (Database.create_ledger_table (db t) ~name ~columns:cols ~key
                   () : Ledger_table.t);
              Protocol.Ok_r))

let checkpoint t s =
  guard (fun () ->
      with_write t s (fun () ->
          Durable.checkpoint t.durable;
          Protocol.Ok_r))

(* Session teardown: roll back any open transaction and release the
   exclusive lock. Called on disconnect, idle timeout, and drain. *)
let cleanup t s =
  match s.s_txn with
  | None -> ()
  | Some txn ->
      s.s_txn <- None;
      (try if Txn.is_active txn then Txn.rollback txn
       with _ -> ());
      Rwlock.unlock_write t.lock

(* [handle] returns the response plus whether the server should close
   the connection after sending it. *)
let handle t s req =
  match req with
  | Protocol.Hello { version; client } ->
      if version <> Protocol.version then
        ( err Protocol.Version_mismatch
            "protocol version mismatch: client %d, server %d" version
            Protocol.version,
          `Close )
      else begin
        s.s_hello <- true;
        if client <> "" then s.s_user <- Printf.sprintf "%s-%d" client s.s_id;
        ( Protocol.Welcome
            {
              version = Protocol.version;
              server = t.server_name;
              database = Database.name (db t);
            },
          `Keep )
      end
  | _ when not s.s_hello ->
      (err Protocol.Bad_request "first request must be hello", `Close)
  | Protocol.Ping -> (Protocol.Pong, `Keep)
  | Protocol.Exec { sql } -> (exec_sql t s sql, `Keep)
  | Protocol.Query { sql } -> (query_sql t s sql, `Keep)
  | Protocol.Begin -> (begin_txn t s, `Keep)
  | Protocol.Commit -> (end_txn t s ~commit:true, `Keep)
  | Protocol.Rollback -> (end_txn t s ~commit:false, `Keep)
  | Protocol.Digest -> (generate_digest t s, `Keep)
  | Protocol.Receipt { txn_id } -> (generate_receipt t s ~txn_id, `Keep)
  | Protocol.Verify { tables; digests } ->
      (run_verify t s ~tables ~digest_jsons:digests, `Keep)
  | Protocol.Create_table { name; columns; key } ->
      (create_table t s ~name ~columns ~key, `Keep)
  | Protocol.Checkpoint -> (checkpoint t s, `Keep)
  | Protocol.Stats -> (Protocol.Stats_r (Metrics.lines t.metrics), `Keep)
  | Protocol.Quit -> (Protocol.Bye, `Close)
