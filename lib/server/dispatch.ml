(* Request dispatch: maps one decoded wire request onto the ledger
   engine, under the locking discipline described in Rwlock.

   Sessions are the unit of transaction state. An explicit BEGIN takes
   the exclusive lock and parks the open [Txn.t] on the session, so the
   transaction's statements — which mutate tables in place — span
   requests safely; COMMIT/ROLLBACK (or session teardown: disconnect,
   idle timeout, server drain) releases it. Auto-commit statements take
   the lock only for their own duration. *)

open Sql_ledger
module Protocol = Wire.Protocol

(* Two personalities share the dispatch table:

   - [Primary] owns a durable directory and accepts the full catalogue,
     including [Subscribe] (which hands the session over to the server's
     replication feed loop) and [Digest] (routed through the trusted
     store's §3.6 replication gate when one is wired in).

   - [Replica_view] serves the replica daemon's read port: reads run
     against whatever database the replication client has materialised
     so far, every write-shaped request is refused with the typed
     [read_only] error naming the primary, and the engine lock is shared
     with the apply path so readers never see a half-applied batch. *)
type backend =
  | Primary of {
      durable : Durable.t;
      queue : Commit_queue.t option;
          (* group commit; [None] runs the legacy commit-per-fsync path *)
      repl : Repl.Manager.t option;
      digests : Trusted_store.Digest_manager.t option;
    }
  | Replica_view of {
      get_db : unit -> Database.t option;
      primary : string;  (* host:port, for read_only error messages *)
    }

type t = {
  backend : backend;
  lock : Rwlock.t;
  metrics : Metrics.t;
  server_name : string;
}

type session = {
  s_id : int;
  mutable s_user : string;
  mutable s_hello : bool;
  mutable s_txn : Txn.t option;
}

let create ?(group_commit_window = 0.0) ?repl ?digests ~durable ~metrics
    ~server_name () =
  let queue =
    if group_commit_window > 0.0 then
      Some
        (Commit_queue.create ~window:group_commit_window
           ~ledger:(Database.ledger (Durable.db durable))
           ~metrics)
    else None
  in
  {
    backend = Primary { durable; queue; repl; digests };
    lock = Rwlock.create ();
    metrics;
    server_name;
  }

(* The replica node owns the lock: its apply thread takes the writer side
   around each batch, excluding the readers dispatched here. *)
let create_replica ~lock ~get_db ~primary ~metrics ~server_name () =
  { backend = Replica_view { get_db; primary }; lock; metrics; server_name }

let queue t =
  match t.backend with Primary { queue; _ } -> queue | Replica_view _ -> None

(* Direct WAL writers — explicit transactions, DDL, checkpoints, digests
   (they append records immediately) — must drain the commit queue once
   they hold the writer lock: the commit leader appends to the WAL
   without holding the engine lock, and its batches must reach the log
   before any record logged here. While the writer lock is held no new
   ticket can be enqueued, so the log stays quiescent until release. *)
let flush_queue t = Option.iter Commit_queue.flush (queue t)

let new_session ~id = { s_id = id; s_user = Printf.sprintf "client-%d" id; s_hello = false; s_txn = None }

exception Not_synced

let db t =
  match t.backend with
  | Primary { durable; _ } -> Durable.db durable
  | Replica_view { get_db; _ } -> (
      match get_db () with Some db -> db | None -> raise Not_synced)

let err code fmt =
  Printf.ksprintf
    (fun message -> Protocol.Error_r { code; message })
    fmt

(* A session in an explicit transaction already holds the exclusive
   lock, so nested acquisition would self-deadlock: run directly. *)
let with_read t s f =
  match s.s_txn with Some _ -> f () | None -> Rwlock.read t.lock f

let with_write t s f =
  match s.s_txn with
  | Some _ -> f ()
  | None ->
      Rwlock.write t.lock (fun () ->
          flush_queue t;
          f ())

let rows_of_rel rel =
  Protocol.Rows_r
    {
      columns = Sqlexec.Rel.column_names rel;
      rows = List.map Relation.Row.to_list rel.Sqlexec.Rel.rows;
    }

let result_to_response = function
  | Dml.Rows rel -> rows_of_rel rel
  | Dml.Affected n -> Protocol.Affected_r n

(* Engine exceptions -> typed wire errors. Fault-injection exceptions
   must keep propagating: the session loop owns crash semantics. *)
let guard f =
  try f () with
  | Sqlexec.Parser.Parse_error e | Sqlexec.Lexer.Lex_error e ->
      err Protocol.Parse_error "%s" e
  | Sqlexec.Executor.Exec_error e | Types.Ledger_error e ->
      err Protocol.Exec_error "%s" e
  | Storage.Table_store.Duplicate_key k ->
      err Protocol.Exec_error "duplicate key %s" k
  | Storage.Table_store.Not_found_key k ->
      err Protocol.Exec_error "no such key %s" k
  | Not_synced ->
      err Protocol.Exec_error
        "replica has not received the database from the primary yet"
  | Failure e -> err Protocol.Exec_error "%s" e
  | (Fault.Injected_crash _ | Fault.Injected_error _) as e -> raise e

let exec_sql t s sql =
  guard (fun () ->
      let statement = Sqlexec.Parser.parse_statement sql in
      let run () =
        result_to_response
          (Dml.execute_statement ?txn:s.s_txn (db t) ~user:s.s_user statement)
      in
      match statement with
      | Sqlexec.Ast.Select _ -> with_read t s run
      | _ -> (
          match (s.s_txn, queue t) with
          | Some _, _ | None, None -> with_write t s run
          | None, Some q ->
              (* Group commit: execute and stage under the exclusive
                 lock, enqueue before releasing it (batch order =
                 execution order), then wait for the commit leader to
                 publish the batch under one fsync. *)
              Rwlock.lock_write t.lock;
              let outcome =
                try
                  let result, staged =
                    Dml.execute_statement_staged (db t) ~user:s.s_user
                      statement
                  in
                  let ticket =
                    Option.map
                      (fun (st : Dml.staged) ->
                        Commit_queue.enqueue q ~entry:st.staged_entry
                          ~records:st.staged_records)
                      staged
                  in
                  Ok (result, ticket)
                with e -> Error e
              in
              Rwlock.unlock_write t.lock;
              (match outcome with
              | Error e -> raise e
              | Ok (result, ticket) ->
                  Option.iter (Commit_queue.await q) ticket;
                  result_to_response result)))

let query_sql t s sql =
  guard (fun () ->
      match Sqlexec.Parser.parse_statement sql with
      | Sqlexec.Ast.Select _ as statement ->
          with_read t s (fun () ->
              result_to_response
                (Dml.execute_statement ?txn:s.s_txn (db t) ~user:s.s_user
                   statement))
      | _ -> err Protocol.Bad_request "query accepts SELECT statements only")

let begin_txn t s =
  match s.s_txn with
  | Some txn ->
      err Protocol.Txn_state "transaction %d is already open" (Txn.id txn)
  | None ->
      Rwlock.lock_write t.lock;
      (* The explicit transaction logs BEGIN now and holds the lock until
         COMMIT/ROLLBACK, so one flush here keeps the WAL quiescent for
         the transaction's whole lifetime. *)
      flush_queue t;
      let txn = Database.begin_txn (db t) ~user:s.s_user in
      s.s_txn <- Some txn;
      Protocol.Txn_r { txn_id = Some (Txn.id txn) }

let end_txn t s ~commit =
  match s.s_txn with
  | None -> err Protocol.Txn_state "no transaction is open"
  | Some txn ->
      let finish resp =
        s.s_txn <- None;
        Rwlock.unlock_write t.lock;
        resp
      in
      finish
        (guard (fun () ->
             if commit then begin
               let entry = Txn.commit txn in
               Protocol.Txn_r { txn_id = Some entry.Types.txn_id }
             end
             else begin
               Txn.rollback txn;
               Protocol.Txn_r { txn_id = None }
             end))

let generate_digest t s =
  (* Closing the open block mutates the ledger: exclusive. *)
  guard (fun () ->
      with_write t s (fun () ->
          match t.backend with
          | Primary { digests = Some dm; _ } -> (
              (* §3.6 over the wire: the trusted-store gate decides, and
                 its deferral/alert outcomes surface as typed errors a
                 client can distinguish from plain failure. *)
              match Trusted_store.Digest_manager.upload dm (db t) with
              | Trusted_store.Digest_manager.Uploaded d ->
                  Protocol.Digest_r (Digest.to_json d)
              | Trusted_store.Digest_manager.Nothing_to_upload ->
                  err Protocol.Exec_error "nothing committed yet"
              | Trusted_store.Digest_manager.Deferred_replication_lag ->
                  err Protocol.Replication_lag
                    "digest deferred: a replica has not yet acknowledged \
                     the latest commits (deferral %d)"
                    (Trusted_store.Digest_manager.deferral_count dm)
              | Trusted_store.Digest_manager.Alert_replication_stuck ->
                  err Protocol.Replication_stuck
                    "digest gate alert: replication stuck after %d \
                     consecutive deferrals"
                    (Trusted_store.Digest_manager.deferral_count dm))
          | Primary { digests = None; _ } | Replica_view _ -> (
              match Database.generate_digest (db t) with
              | Some d -> Protocol.Digest_r (Digest.to_json d)
              | None -> err Protocol.Exec_error "nothing committed yet")))

let generate_receipt t s ~txn_id =
  with_read t s (fun () ->
      match Receipt.generate (db t) ~txn_id with
      | Ok r -> Protocol.Receipt_r (Receipt.to_json r)
      | Error e -> err Protocol.Exec_error "%s" e)

let run_verify t s ~tables ~digest_jsons =
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | j :: rest -> (
        match Digest.of_json j with
        | Ok d -> parse (d :: acc) rest
        | Error e -> Error e)
  in
  match parse [] digest_jsons with
  | Error e -> err Protocol.Bad_request "%s" e
  | Ok digests -> (
      match
        List.find_opt
          (fun n -> Database.find_ledger_table (db t) n = None)
          tables
      with
      | Some missing -> err Protocol.Exec_error "no such ledger table: %s" missing
      | None ->
          let tables = if tables = [] then None else Some tables in
          with_read t s (fun () ->
              let report = Verifier.verify ?tables (db t) ~digests in
              Protocol.Verify_r
                {
                  vs_ok = Verifier.ok report;
                  vs_blocks = report.Verifier.blocks_checked;
                  vs_transactions = report.Verifier.transactions_checked;
                  vs_versions = report.Verifier.versions_checked;
                  vs_violations =
                    List.map Verifier.violation_to_string
                      report.Verifier.violations;
                }))

let create_table t s ~name ~columns ~key =
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | (cname, ty) :: rest -> (
        match Relation.Datatype.of_string ty with
        | Some dtype -> build (Relation.Column.make cname dtype :: acc) rest
        | None -> Error ty)
  in
  match build [] columns with
  | Error ty -> err Protocol.Bad_request "unknown column type %S" ty
  | Ok cols ->
      guard (fun () ->
          with_write t s (fun () ->
              ignore
                (Database.create_ledger_table (db t) ~name ~columns:cols ~key
                   () : Ledger_table.t);
              Protocol.Ok_r))

let checkpoint t s =
  guard (fun () ->
      with_write t s (fun () ->
          match t.backend with
          | Primary { durable; _ } ->
              Durable.checkpoint durable;
              Protocol.Ok_r
          | Replica_view _ ->
              err Protocol.Bad_request "replica does not checkpoint"))

(* Accept a replication subscriber. Runs under the writer lock: the
   commit queue is flushed, so the log position and (when needed) the
   snapshot are a consistent cut of the database. The session is handed
   back to the server with a [`Stream] action and never returns to the
   request/response loop. *)
let subscribe t s ~from_lsn ~replica_id =
  match t.backend with
  | Replica_view _ ->
      ( err Protocol.Bad_request "replicas do not serve replication streams",
        `Keep )
  | Primary { repl = None; _ } ->
      (err Protocol.Bad_request "replication is not enabled", `Keep)
  | Primary { repl = Some mgr; durable; _ } -> (
      try
        with_write t s (fun () ->
          let dbv = Durable.db durable in
          let wal = Database_ledger.wal (Database.ledger dbv) in
          let last = Aries.Wal.last_lsn wal in
          if from_lsn > last then
            (* The subscriber holds records this primary never durably
               logged (it crashed after shipping but before its own
               fsync, then recovered): their histories have forked, and
               streaming would silently reuse those LSNs for different
               records. *)
            ( err Protocol.Exec_error
                "replica position %d is ahead of the primary log (%d): \
                 diverged history; rebuild the replica"
                from_lsn last,
              `Keep )
          else
            let servable =
              match Aries.Wal.first_available wal with
              | None -> from_lsn >= last
              | Some f -> from_lsn >= f - 1
            in
            if servable then
              let entry, epoch =
                Repl.Manager.register mgr ~id:replica_id ~peer:s.s_user
                  ~from_lsn
              in
              ( Protocol.Subscribed { last_lsn = last },
                `Stream (entry, epoch, from_lsn) )
            else
              (* The requested position predates the in-memory log
                 (compaction or a restart truncated it): ship a full
                 snapshot and stream from its position instead. *)
              let snap = Snapshot.save dbv in
              let entry, epoch =
                Repl.Manager.register mgr ~id:replica_id ~peer:s.s_user
                  ~from_lsn:last
              in
              ( Protocol.Snapshot_r { snapshot = snap; last_lsn = last },
                `Stream (entry, epoch, last) ))
      with
      | (Fault.Injected_crash _ | Fault.Injected_error _) as e -> raise e
      | Types.Ledger_error e | Failure e ->
          (err Protocol.Exec_error "%s" e, `Keep))

(* Session teardown: roll back any open transaction and release the
   exclusive lock. Called on disconnect, idle timeout, and drain. *)
let cleanup t s =
  match s.s_txn with
  | None -> ()
  | Some txn ->
      s.s_txn <- None;
      (try if Txn.is_active txn then Txn.rollback txn
       with _ -> ());
      Rwlock.unlock_write t.lock

(* Requests that would mutate the ledger. A replica refuses them with
   the typed [read_only] error so a client (or a proxy) can retarget the
   write at the primary instead of treating it as a hard failure.
   [Digest] counts as a write: issuing one closes the open block, which
   would fork the replica's ledger away from the primary's. *)
let is_write_shaped = function
  | Protocol.Exec _ | Protocol.Begin | Protocol.Commit | Protocol.Rollback
  | Protocol.Create_table _ | Protocol.Checkpoint | Protocol.Digest ->
      true
  | _ -> false

(* [handle] returns the response plus what the server should do with the
   connection afterwards: keep serving it, close it, or hand it to the
   replication feed loop. *)
let handle t s req =
  match req with
  | Protocol.Hello { version; client } ->
      if version <> Protocol.version then
        ( err Protocol.Version_mismatch
            "protocol version mismatch: client %d, server %d" version
            Protocol.version,
          `Close )
      else begin
        s.s_hello <- true;
        if client <> "" then s.s_user <- Printf.sprintf "%s-%d" client s.s_id;
        let database =
          match t.backend with
          | Primary _ -> Database.name (db t)
          | Replica_view { get_db; _ } -> (
              match get_db () with
              | Some d -> Database.name d
              | None -> "(replica syncing)")
        in
        ( Protocol.Welcome
            { version = Protocol.version; server = t.server_name; database },
          `Keep )
      end
  | _ when not s.s_hello ->
      (err Protocol.Bad_request "first request must be hello", `Close)
  | req
    when (match t.backend with Replica_view _ -> true | Primary _ -> false)
         && is_write_shaped req -> (
      match t.backend with
      | Replica_view { primary; _ } ->
          ( err Protocol.Read_only
              "replica is read-only; writes go to the primary at %s" primary,
            `Keep )
      | Primary _ -> assert false)
  | Protocol.Ping -> (Protocol.Pong, `Keep)
  | Protocol.Exec { sql } -> (exec_sql t s sql, `Keep)
  | Protocol.Query { sql } -> (query_sql t s sql, `Keep)
  | Protocol.Begin -> (begin_txn t s, `Keep)
  | Protocol.Commit -> (end_txn t s ~commit:true, `Keep)
  | Protocol.Rollback -> (end_txn t s ~commit:false, `Keep)
  | Protocol.Digest -> (generate_digest t s, `Keep)
  | Protocol.Receipt { txn_id } -> (generate_receipt t s ~txn_id, `Keep)
  | Protocol.Verify { tables; digests } ->
      (run_verify t s ~tables ~digest_jsons:digests, `Keep)
  | Protocol.Create_table { name; columns; key } ->
      (create_table t s ~name ~columns ~key, `Keep)
  | Protocol.Checkpoint -> (checkpoint t s, `Keep)
  | Protocol.Subscribe { from_lsn; replica_id } ->
      subscribe t s ~from_lsn ~replica_id
  | Protocol.Stats -> (Protocol.Stats_r (Metrics.lines t.metrics), `Keep)
  | Protocol.Quit -> (Protocol.Bye, `Close)
