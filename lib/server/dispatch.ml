(* Request dispatch: maps one decoded wire request onto the ledger
   engine.

   Writes keep the locking discipline described in Rwlock: the writer
   lock serializes all mutation (staging, DDL, checkpoints, digests,
   explicit transactions). Reads no longer take any lock — they run
   against the most recently *published* snapshot, an immutable
   [Database.t] built on the copy-on-write B+trees and swapped in with a
   single atomic store:

   - group-commit mode: each staged commit captures a snapshot at
     enqueue (under the writer lock); the commit leader installs the
     batch's newest snapshot after the batch's fsync, so readers only
     ever observe durable state;
   - direct writers (explicit COMMIT/ROLLBACK, DDL, checkpoint, digest,
     the legacy commit-per-fsync path): publish at writer-lock release;
   - the replica node publishes after each applied batch via
     [refresh_snapshot].

   Sessions are the unit of transaction state. An explicit BEGIN takes
   the exclusive lock and parks the open [Txn.t] on the session, so the
   transaction's statements — which mutate tables in place — span
   requests safely; its reads run against the live database (it must see
   its own uncommitted writes). COMMIT/ROLLBACK (or session teardown:
   disconnect, idle timeout, server drain) releases the lock. *)

open Sql_ledger
module Protocol = Wire.Protocol

(* Two personalities share the dispatch table:

   - [Primary] owns a durable directory and accepts the full catalogue,
     including [Subscribe] (which hands the session over to the server's
     replication feed loop) and [Digest] (routed through the trusted
     store's §3.6 replication gate when one is wired in).

   - [Replica_view] serves the replica daemon's read port: reads run
     against the snapshot published after the last applied batch, every
     write-shaped request is refused with the typed [read_only] error
     naming the primary, and before the first batch lands readers fall
     back to sharing the engine lock with the apply path so they never
     see a half-applied state. *)
type backend =
  | Primary of {
      durable : Durable.t;
      queue : Commit_queue.t option;
          (* group commit; [None] runs the legacy commit-per-fsync path *)
      repl : Repl.Manager.t option;
      digests : Trusted_store.Digest_manager.t option;
    }
  | Replica_view of {
      get_db : unit -> Database.t option;
      primary : string;  (* host:port, for read_only error messages *)
    }

(* The served read view. [p_seq] is the batch counter's value when this
   snapshot was installed: the snapshot holds every batch published up to
   that point, so [batch_seq - p_seq] is how many durable batches the
   served view is missing — the [snapshot.age_batches] gauge, expected to
   sit at 0. *)
type published = { p_db : Database.t; p_seq : int }

(* A transaction that voted yes in a two-phase commit and now awaits the
   coordinator's decision. [Live] is the normal case: the session's open
   transaction, moved off the session at PREPARE (so disconnects cannot
   roll it back) with its in-place table mutations intact and the writer
   lock still held. [Recovered] is the post-crash case: the effects were
   withheld by replay, so decide-commit must re-apply the recorded redo
   before logging COMMIT. Either way the writer lock stays held across
   the in-doubt window — 2PC blocks the shard, by design. *)
type prepared_txn = Live of Txn.t | Recovered of Wal_replay.in_doubt

type t = {
  backend : backend;
  lock : Rwlock.t;
  metrics : Metrics.t;
  server_name : string;
  auth_secret : string option;
      (* shared-secret contents backing principal authentication; [None]
         means the node cannot verify principal claims and refuses them *)
  snap : published option Atomic.t;
      (* latest published snapshot; [None] only on a replica that has
         not applied anything yet *)
  batch_seq : int Atomic.t;  (* durable batches published so far *)
  (* Admission control (0 = unlimited). [max_inflight] caps requests in
     dispatch across all sessions; [max_queue_depth] caps staged commits
     waiting for the group-commit leader. Past either cap, requests that
     would *start* new write work are shed with the typed [overloaded]
     error before any of it happens. *)
  max_inflight : int;
  max_queue_depth : int;
  inflight : int Atomic.t;
  gc_window : float;  (* group-commit window, sizes the retry-after hint *)
  prepared : (string, prepared_txn) Hashtbl.t;  (* gid -> awaiting decision *)
  prepared_mu : Mutex.t;
  recovered_hold : int ref;
      (* number of [Recovered] entries still undecided; while > 0 the
         writer lock is held on their behalf (taken at startup), released
         when the last one is decided. Guarded by [prepared_mu]. *)
}

type session = {
  s_id : int;
  mutable s_user : string;
  mutable s_hello : bool;
  mutable s_txn : Txn.t option;
  mutable s_arrival : float;  (* when the current request was decoded *)
  mutable s_deadline : float option;
      (* absolute time past which the current request must be answered
         [deadline_exceeded] instead of executed (from the envelope's
         [deadline_ms] budget) *)
}

let register_snapshot_age ~metrics ~snap ~batch_seq =
  Metrics.register_lines metrics (fun () ->
      match Atomic.get snap with
      | None -> [ "sqlledger_snapshot_age_batches -1" ]
      | Some p ->
          [
            Printf.sprintf "sqlledger_snapshot_age_batches %d"
              (max 0 (Atomic.get batch_seq - p.p_seq));
          ])

let create ?(group_commit_window = 0.0) ?(max_inflight = 0)
    ?(max_queue_depth = 0) ?auth_secret ?repl ?digests ~durable ~metrics
    ~server_name () =
  let snap = Atomic.make None in
  let batch_seq = Atomic.make 0 in
  let queue =
    if group_commit_window > 0.0 then
      Some
        (Commit_queue.create ~window:group_commit_window
           ~ledger:(Database.ledger (Durable.db durable))
           ~metrics
           ~on_publish:(fun db ->
             (* Leader-side install, after the batch's fsync. The bump
                then the swap: a snapshot installed here is exactly
                [batch_seq] batches deep, age 0. *)
             let seq = 1 + Atomic.fetch_and_add batch_seq 1 in
             Atomic.set snap (Some { p_db = db; p_seq = seq }))
           ())
    else None
  in
  (* The boot state is the recovered database: publish it before the
     first connection so readers are lock-free from the first request. *)
  Atomic.set snap
    (Some { p_db = Database.snapshot (Durable.db durable); p_seq = 0 });
  register_snapshot_age ~metrics ~snap ~batch_seq;
  let t =
    {
      backend = Primary { durable; queue; repl; digests };
      lock = Rwlock.create ();
      metrics;
      server_name;
      auth_secret;
      snap;
      batch_seq;
      max_inflight;
      max_queue_depth;
      inflight = Atomic.make 0;
      gc_window = group_commit_window;
      prepared = Hashtbl.create 4;
      prepared_mu = Mutex.create ();
      recovered_hold = ref 0;
    }
  in
  (* Recovery surfaced prepared-but-undecided transactions: their effects
     are not in the database, and no new write may interleave until the
     coordinator resolves them. Hold the writer lock on their behalf —
     reads stay lock-free against the published (pre-decision) snapshot,
     and [Decide] releases the lock when the last one settles. *)
  (match Durable.in_doubt durable with
  | [] -> ()
  | in_doubt ->
      Rwlock.lock_write t.lock;
      t.recovered_hold := List.length in_doubt;
      List.iter
        (fun (d : Wal_replay.in_doubt) ->
          Hashtbl.replace t.prepared d.gid (Recovered d))
        in_doubt);
  t

(* The replica node owns the lock: its apply thread takes the writer side
   around each batch. Readers here serve published snapshots; until the
   first batch is applied there is nothing published and they share the
   lock with the apply path. *)
let create_replica ?auth_secret ~lock ~get_db ~primary ~metrics ~server_name
    () =
  let snap = Atomic.make None in
  let batch_seq = Atomic.make 0 in
  register_snapshot_age ~metrics ~snap ~batch_seq;
  {
    backend = Replica_view { get_db; primary };
    lock;
    metrics;
    server_name;
    auth_secret;
    snap;
    batch_seq;
    max_inflight = 0;
    max_queue_depth = 0;
    inflight = Atomic.make 0;
    gc_window = 0.0;
    prepared = Hashtbl.create 1;
    prepared_mu = Mutex.create ();
    recovered_hold = ref 0;
  }

let queue t =
  match t.backend with Primary { queue; _ } -> queue | Replica_view _ -> None

(* Direct WAL writers — explicit transactions, DDL, checkpoints, digests
   (they append records immediately) — must drain the commit queue once
   they hold the writer lock: the commit leader appends to the WAL
   without holding the engine lock, and its batches must reach the log
   before any record logged here. While the writer lock is held no new
   ticket can be enqueued, so the log stays quiescent until release. *)
let flush_queue t = Option.iter Commit_queue.flush (queue t)

let new_session ~id =
  {
    s_id = id;
    s_user = Printf.sprintf "client-%d" id;
    s_hello = false;
    s_txn = None;
    s_arrival = Unix.gettimeofday ();
    s_deadline = None;
  }

exception Not_synced

(* Raised at the enforcement points below when the current request's
   deadline budget ran out before its work began; [guard] turns it into
   the typed [deadline_exceeded] error. By construction nothing has been
   executed or staged when it is raised — the "no work done" promise the
   client-side retry relies on. *)
exception Deadline_blown

let past_deadline s =
  match s.s_deadline with
  | Some at -> Unix.gettimeofday () > at
  | None -> false

(* How long the request waited between arrival and its work starting —
   in-queue time: the writer-lock wait, plus any dispatch overhead. *)
let note_queue_wait t s =
  Metrics.record t.metrics ~kind:"server.queue_wait_us" ~error:false
    ~us:((Unix.gettimeofday () -. s.s_arrival) *. 1e6)

let db t =
  match t.backend with
  | Primary { durable; _ } -> Durable.db durable
  | Replica_view { get_db; _ } -> (
      match get_db () with Some db -> db | None -> raise Not_synced)

let err code fmt =
  Printf.ksprintf
    (fun message -> Protocol.Error_r { code; message; retry_after_ms = None; map_epoch = None })
    fmt

let err_retry code ~retry_after_ms fmt =
  Printf.ksprintf
    (fun message ->
      Protocol.Error_r { code; message; retry_after_ms = Some retry_after_ms; map_epoch = None })
    fmt

(* Lock acquisitions are timed into power-of-two histograms so a bench
   (or an operator) can prove readers no longer queue behind writers:
   [lock.read_wait_us] is the cost of acquiring read access — the atomic
   snapshot fetch on the fast path, the shared lock on the replica's
   pre-sync fallback — and [lock.write_wait_us] is the writer-lock wait,
   which after this refactor is contention between writers only. *)
let lock_write_timed t =
  let t0 = Unix.gettimeofday () in
  Rwlock.lock_write t.lock;
  Metrics.record t.metrics ~kind:"lock.write_wait_us" ~error:false
    ~us:((Unix.gettimeofday () -. t0) *. 1e6)

(* Publish the live database's current state as the served read view.
   Caller must hold the writer lock: capture needs a quiescent engine,
   and the lock is also what orders this install against the commit
   leader's (flush-then-mutate-then-publish, see [with_write]). *)
let publish_snapshot t =
  match (try Some (db t) with Not_synced -> None) with
  | None -> ()
  | Some live ->
      Atomic.set t.snap
        (Some
           { p_db = Database.snapshot live; p_seq = Atomic.get t.batch_seq })

(* Replica apply path: the node calls this after each applied batch (and
   after installing a bootstrap snapshot) while still holding the writer
   lock, making the new state visible to lock-free readers. *)
let refresh_snapshot t = publish_snapshot t

(* Read-shaped work. A session inside an explicit transaction holds the
   exclusive lock and must see its own uncommitted writes: run against
   the live database. Everyone else reads the latest published snapshot
   without touching the lock at all; only a replica that has not yet
   published (no batch applied since boot) falls back to sharing the
   lock with the apply path. *)
let with_read t s f =
  match s.s_txn with
  | Some _ -> f (db t)
  | None -> (
      if past_deadline s then raise Deadline_blown;
      let t0 = Unix.gettimeofday () in
      match Atomic.get t.snap with
      | Some p ->
          Metrics.record t.metrics ~kind:"lock.read_wait_us" ~error:false
            ~us:((Unix.gettimeofday () -. t0) *. 1e6);
          f p.p_db
      | None ->
          Rwlock.lock_read t.lock;
          Metrics.record t.metrics ~kind:"lock.read_wait_us" ~error:false
            ~us:((Unix.gettimeofday () -. t0) *. 1e6);
          Fun.protect
            ~finally:(fun () -> Rwlock.unlock_read t.lock)
            (fun () ->
              if past_deadline s then raise Deadline_blown;
              f (db t)))

let with_write t s f =
  match s.s_txn with
  | Some _ -> f ()
  | None ->
      lock_write_timed t;
      note_queue_wait t s;
      Fun.protect
        ~finally:(fun () ->
          (* Even on an engine error: the state a failed statement left
             behind is the state the next reader would have seen under
             the old lock discipline too. *)
          publish_snapshot t;
          Rwlock.unlock_write t.lock)
        (fun () ->
          (* The queue wait is over; a request that rotted behind other
             writers is refused before any of its work happens. *)
          if past_deadline s then raise Deadline_blown;
          flush_queue t;
          f ())

let rows_of_rel rel =
  Protocol.Rows_r
    {
      columns = Sqlexec.Rel.column_names rel;
      rows = List.map Relation.Row.to_list rel.Sqlexec.Rel.rows;
    }

(* [txn_id] is the autocommitted statement's transaction id when the
   group-commit path staged one — returned so the client can fetch the
   transaction's receipt later without a lookup query. *)
let result_to_response ?txn_id = function
  | Dml.Rows rel -> rows_of_rel rel
  | Dml.Affected n -> Protocol.Affected_r { rows = n; txn_id }

(* Engine exceptions -> typed wire errors. Fault-injection exceptions
   must keep propagating: the session loop owns crash semantics. *)
let guard t f =
  try f () with
  | Sqlexec.Parser.Parse_error e | Sqlexec.Lexer.Lex_error e ->
      err Protocol.Parse_error "%s" e
  | Sqlexec.Executor.Exec_error e | Types.Ledger_error e ->
      err Protocol.Exec_error "%s" e
  | Storage.Table_store.Duplicate_key k ->
      err Protocol.Exec_error "duplicate key %s" k
  | Storage.Table_store.Not_found_key k ->
      err Protocol.Exec_error "no such key %s" k
  | Not_synced ->
      err Protocol.Exec_error
        "replica has not received the database from the primary yet"
  | Deadline_blown ->
      Metrics.bump t.metrics "server.deadline_exceeded";
      err Protocol.Deadline_exceeded
        "request deadline expired before execution began; no work was done"
  | Failure e -> err Protocol.Exec_error "%s" e
  | (Fault.Injected_crash _ | Fault.Injected_error _) as e -> raise e

(* Temporal reads (FOR SYSTEM_TIME AS OF anywhere in the FROM tree) get
   their own counter next to the per-kind histograms, so an operator can
   see how much of the read path is time travel. *)
let rec from_has_as_of = function
  | Sqlexec.Ast.Table { as_of; _ } -> as_of <> None
  | Sqlexec.Ast.Subquery { query; _ } -> select_has_as_of query
  | Sqlexec.Ast.Openjson _ -> false
  | Sqlexec.Ast.Join { left; right; _ } ->
      from_has_as_of left || from_has_as_of right

and select_has_as_of (q : Sqlexec.Ast.select) =
  match q.from with Some f -> from_has_as_of f | None -> false

let note_temporal t = function
  | Sqlexec.Ast.Select q when select_has_as_of q ->
      Metrics.bump t.metrics "query.temporal"
  | _ -> ()

let exec_sql t s sql =
  guard t (fun () ->
      let statement = Sqlexec.Parser.parse_statement sql in
      note_temporal t statement;
      let run () =
        result_to_response
          (Dml.execute_statement ?txn:s.s_txn (db t) ~user:s.s_user statement)
      in
      match statement with
      | Sqlexec.Ast.Select _ ->
          with_read t s (fun view ->
              result_to_response
                (Dml.execute_statement ?txn:s.s_txn view ~user:s.s_user
                   statement))
      | _ -> (
          match (s.s_txn, queue t) with
          | Some _, _ | None, None -> with_write t s run
          | None, Some q ->
              (* Group commit: execute and stage under the exclusive
                 lock, enqueue — with a COW snapshot of the staged state
                 — before releasing it (batch order = execution order),
                 then wait for the commit leader to publish the batch
                 under one fsync. The leader installs the batch's newest
                 snapshot as the served read view, so by the time this
                 request is acked its write is visible to every
                 subsequent lock-free read. *)
              lock_write_timed t;
              note_queue_wait t s;
              let outcome =
                try
                  if past_deadline s then raise Deadline_blown;
                  let result, staged =
                    Dml.execute_statement_staged (db t) ~user:s.s_user
                      statement
                  in
                  let ticket =
                    Option.map
                      (fun (st : Dml.staged) ->
                        ( Commit_queue.enqueue q ~entry:st.staged_entry
                            ~records:st.staged_records
                            ~snapshot:(Database.snapshot (db t)),
                          st.staged_entry.Types.txn_id ))
                      staged
                  in
                  Ok (result, ticket)
                with e -> Error e
              in
              Rwlock.unlock_write t.lock;
              (match outcome with
              | Error e -> raise e
              | Ok (result, ticket) ->
                  Option.iter (fun (ticket, _) -> Commit_queue.await q ticket)
                    ticket;
                  let txn_id = Option.map snd ticket in
                  result_to_response ?txn_id result)))

let query_sql t s sql =
  guard t (fun () ->
      match Sqlexec.Parser.parse_statement sql with
      | Sqlexec.Ast.Select _ as statement ->
          note_temporal t statement;
          with_read t s (fun view ->
              result_to_response
                (Dml.execute_statement ?txn:s.s_txn view ~user:s.s_user
                   statement))
      | _ -> err Protocol.Bad_request "query accepts SELECT statements only")

let begin_txn t s =
  match s.s_txn with
  | Some txn ->
      err Protocol.Txn_state "transaction %d is already open" (Txn.id txn)
  | None ->
      lock_write_timed t;
      note_queue_wait t s;
      if past_deadline s then begin
        Rwlock.unlock_write t.lock;
        guard t (fun () -> raise Deadline_blown)
      end
      else begin
        (* The explicit transaction logs BEGIN now and holds the lock
           until COMMIT/ROLLBACK, so one flush here keeps the WAL
           quiescent for the transaction's whole lifetime. *)
        flush_queue t;
        let txn = Database.begin_txn (db t) ~user:s.s_user in
        s.s_txn <- Some txn;
        Protocol.Txn_r { txn_id = Some (Txn.id txn) }
      end

let end_txn t s ~commit =
  match s.s_txn with
  | None -> err Protocol.Txn_state "no transaction is open"
  | Some txn ->
      let finish resp =
        s.s_txn <- None;
        (* Commit or rollback, the transaction's outcome is the new
           state: publish it before readers can race the release. *)
        publish_snapshot t;
        Rwlock.unlock_write t.lock;
        resp
      in
      finish
        (guard t (fun () ->
             if commit then begin
               let entry = Txn.commit txn in
               Protocol.Txn_r { txn_id = Some entry.Types.txn_id }
             end
             else begin
               Txn.rollback txn;
               Protocol.Txn_r { txn_id = None }
             end))

let generate_digest t s =
  (* Closing the open block mutates the ledger: exclusive. *)
  guard t (fun () ->
      with_write t s (fun () ->
          match t.backend with
          | Primary { digests = Some dm; _ } -> (
              (* §3.6 over the wire: the trusted-store gate decides, and
                 its deferral/alert outcomes surface as typed errors a
                 client can distinguish from plain failure. *)
              match Trusted_store.Digest_manager.upload dm (db t) with
              | Trusted_store.Digest_manager.Uploaded d ->
                  Protocol.Digest_r (Digest.to_json d)
              | Trusted_store.Digest_manager.Nothing_to_upload ->
                  err Protocol.Exec_error "nothing committed yet"
              | Trusted_store.Digest_manager.Deferred_replication_lag ->
                  err Protocol.Replication_lag
                    "digest deferred: a replica has not yet acknowledged \
                     the latest commits (deferral %d)"
                    (Trusted_store.Digest_manager.deferral_count dm)
              | Trusted_store.Digest_manager.Alert_replication_stuck ->
                  err Protocol.Replication_stuck
                    "digest gate alert: replication stuck after %d \
                     consecutive deferrals"
                    (Trusted_store.Digest_manager.deferral_count dm))
          | Primary { digests = None; _ } | Replica_view _ -> (
              match Database.generate_digest (db t) with
              | Some d -> Protocol.Digest_r (Digest.to_json d)
              | None -> err Protocol.Exec_error "nothing committed yet")))

let generate_receipt t s ~txn_id =
  guard t (fun () ->
      with_read t s (fun view ->
          match Receipt.generate_cached view ~txn_id with
          | Ok r -> Protocol.Receipt_r (Receipt.to_json r)
          | Error e ->
              err Protocol.Exec_error "%s"
                (Receipt.issue_error_to_string ~txn_id e)))

(* Batching bounds the response frame and keeps one slow request from
   monopolizing a read slot; a client with more ids splits the batch. *)
let max_receipt_batch = 256

let generate_receipts t s ~txn_ids =
  if List.length txn_ids > max_receipt_batch then
    err Protocol.Bad_request "receipts batch exceeds %d transactions"
      max_receipt_batch
  else
    guard t (fun () ->
        with_read t s (fun view ->
            (* One pass over the batch against a single frozen view: ids
               from the same block hit the cached tree and amortized
               signature; open-block ids are reported as pending, not
               errors, so a client can retry them after the next close.
               Receipts travel key-stripped, with each block's public
               key and signature carried once in [block_keys] — the key
               pair dwarfs the rest of the receipt, so a batch from one
               block costs one copy of it, not one per transaction. *)
            let seen_blocks = Hashtbl.create 8 in
            let rec go receipts pending keys = function
              | [] ->
                  Protocol.Receipts_r
                    {
                      receipts = List.rev receipts;
                      pending = List.rev pending;
                      block_keys = List.rev keys;
                    }
              | txn_id :: rest -> (
                  match Receipt.generate_cached view ~txn_id with
                  | Ok r ->
                      let keys =
                        match Receipt.key_material r with
                        | Some (block_id, km)
                          when not (Hashtbl.mem seen_blocks block_id) ->
                            Hashtbl.replace seen_blocks block_id ();
                            km :: keys
                        | _ -> keys
                      in
                      go
                        (Receipt.to_json (Receipt.strip_keys r) :: receipts)
                        pending keys rest
                  | Error Receipt.Open_block ->
                      go receipts (txn_id :: pending) keys rest
                  | Error e ->
                      err Protocol.Exec_error "%s"
                        (Receipt.issue_error_to_string ~txn_id e))
            in
            go [] [] [] txn_ids))

let run_verify t s ~tables ~digest_jsons =
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | j :: rest -> (
        match Digest.of_json j with
        | Ok d -> parse (d :: acc) rest
        | Error e -> Error e)
  in
  match parse [] digest_jsons with
  | Error e -> err Protocol.Bad_request "%s" e
  | Ok digests ->
      guard t (fun () ->
          with_read t s (fun view ->
              (* The existence check runs on the same frozen view as the
                 verification itself, so a concurrent DROP/CREATE cannot
                 slip between them. *)
              match
                List.find_opt
                  (fun n -> Database.find_ledger_table view n = None)
                  tables
              with
              | Some missing ->
                  err Protocol.Exec_error "no such ledger table: %s" missing
              | None ->
                  let tables = if tables = [] then None else Some tables in
                  let report = Verifier.verify ?tables view ~digests in
                  Protocol.Verify_r
                    {
                      vs_ok = Verifier.ok report;
                      vs_blocks = report.Verifier.blocks_checked;
                      vs_transactions = report.Verifier.transactions_checked;
                      vs_versions = report.Verifier.versions_checked;
                      vs_violations =
                        List.map Verifier.violation_to_string
                          report.Verifier.violations;
                    }))

let create_table t s ~name ~columns ~key ~ledger =
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | (cname, ty) :: rest -> (
        match Relation.Datatype.of_string ty with
        | Some dtype -> build (Relation.Column.make cname dtype :: acc) rest
        | None -> Error ty)
  in
  match build [] columns with
  | Error ty -> err Protocol.Bad_request "unknown column type %S" ty
  | Ok cols ->
      guard t (fun () ->
          with_write t s (fun () ->
              if ledger then
                ignore
                  (Database.create_ledger_table (db t) ~name ~columns:cols ~key
                     () : Ledger_table.t)
              else
                ignore
                  (Database.create_regular_table (db t) ~name ~columns:cols
                     ~key () : Storage.Table_store.t);
              Protocol.Ok_r))

(* ------------------------------------------------------------------ *)
(* Online migration, server side (one batch per request).

   Copies up to [limit] rows of a plain table — in primary-key order,
   strictly after the caller's cursor — into a ledger table as one
   committed transaction under the session's principal. Rows whose key
   already exists in the target are skipped, which is what makes a batch
   replayable: a crashed migrator resumes from its persisted cursor and
   any batch whose ack was lost re-inserts nothing. Runs under the
   writer lock like any other write; between batches OLTP traffic,
   receipts and the audit daemon proceed normally. *)

let max_migrate_batch = 4096

let migrate_batch t s ~source ~target ~after_key ~limit =
  if limit <= 0 || limit > max_migrate_batch then
    err Protocol.Bad_request "migrate limit must be in 1..%d" max_migrate_batch
  else if s.s_txn <> None then
    err Protocol.Txn_state
      "migrate runs its own transactions; close the open one first"
  else
    guard t (fun () ->
        with_write t s (fun () ->
            let dbv = db t in
            let store = Database.regular_table dbv source in
            let lt = Database.ledger_table dbv target in
            let src_schema = Storage.Table_store.schema store in
            let tgt_schema = Ledger_table.schema lt in
            let tgt_user_cols =
              List.map
                (Relation.Schema.column tgt_schema)
                (Ledger_table.user_ordinals lt)
            in
            if
              not
                (List.equal Relation.Column.equal
                   (Relation.Schema.columns src_schema)
                   tgt_user_cols)
            then
              err Protocol.Exec_error
                "migrate %s -> %s: user schemas differ" source target
            else begin
              let key_arity =
                List.length (Storage.Table_store.key_ordinals store)
              in
              let after =
                match after_key with
                | [] -> None
                | l when List.length l = key_arity ->
                    Some (Relation.Row.of_list l)
                | _ ->
                    Types.errorf
                      "migrate cursor has %d values; the key of %s has %d"
                      (List.length after_key) source key_arity
              in
              let past pk =
                match after with
                | None -> true
                | Some a -> Relation.Row.compare pk a > 0
              in
              (* [scan] walks the clustered tree, so rows arrive in key
                 order and the cursor advances monotonically. *)
              let txn = Database.begin_txn dbv ~user:s.s_user in
              let copied = ref 0 in
              let last_key = ref after_key in
              let finished = ref true in
              (try
                 List.iter
                   (fun row ->
                     let pk = Storage.Table_store.primary_key store row in
                     if past pk then
                       if !copied >= limit then begin
                         (* More source rows remain past this batch. *)
                         finished := false;
                         raise Exit
                       end
                       else begin
                         last_key := Relation.Row.to_list pk;
                         (match Ledger_table.find lt ~key:pk with
                         | Some _ -> ()  (* already copied: idempotent *)
                         | None ->
                             Txn.insert txn lt row;
                             incr copied)
                       end)
                   (Storage.Table_store.scan store)
               with Exit -> ());
              if !copied > 0 then ignore (Txn.commit txn : Types.txn_entry)
              else Txn.rollback txn;
              Metrics.bump ~n:!copied t.metrics "migrate.rows_copied";
              Protocol.Migrate_r
                {
                  copied = !copied;
                  last_key = !last_key;
                  finished = !finished;
                }
            end))

let checkpoint t s =
  guard t (fun () ->
      with_write t s (fun () ->
          match t.backend with
          | Primary { durable; _ } ->
              Durable.checkpoint durable;
              Protocol.Ok_r
          | Replica_view _ ->
              err Protocol.Bad_request "replica does not checkpoint"))

(* Accept a replication subscriber. Runs under the writer lock: the
   commit queue is flushed, so the log position and (when needed) the
   snapshot are a consistent cut of the database. The session is handed
   back to the server with a [`Stream] action and never returns to the
   request/response loop. *)
let subscribe t s ~from_lsn ~replica_id =
  match t.backend with
  | Replica_view _ ->
      ( err Protocol.Bad_request "replicas do not serve replication streams",
        `Keep )
  | Primary { repl = None; _ } ->
      (err Protocol.Bad_request "replication is not enabled", `Keep)
  | Primary { repl = Some mgr; durable; _ } -> (
      try
        with_write t s (fun () ->
          let dbv = Durable.db durable in
          let wal = Database_ledger.wal (Database.ledger dbv) in
          let last = Aries.Wal.last_lsn wal in
          if from_lsn > last then
            (* The subscriber holds records this primary never durably
               logged (it crashed after shipping but before its own
               fsync, then recovered): their histories have forked, and
               streaming would silently reuse those LSNs for different
               records. *)
            ( err Protocol.Exec_error
                "replica position %d is ahead of the primary log (%d): \
                 diverged history; rebuild the replica"
                from_lsn last,
              `Keep )
          else
            let servable =
              match Aries.Wal.first_available wal with
              | None -> from_lsn >= last
              | Some f -> from_lsn >= f - 1
            in
            if servable then
              let entry, epoch =
                Repl.Manager.register mgr ~id:replica_id ~peer:s.s_user
                  ~from_lsn
              in
              ( Protocol.Subscribed { last_lsn = last },
                `Stream (entry, epoch, from_lsn) )
            else
              (* The requested position predates the in-memory log
                 (compaction or a restart truncated it): ship a full
                 snapshot and stream from its position instead. *)
              let snap = Snapshot.save dbv in
              let entry, epoch =
                Repl.Manager.register mgr ~id:replica_id ~peer:s.s_user
                  ~from_lsn:last
              in
              ( Protocol.Snapshot_r { snapshot = snap; last_lsn = last },
                `Stream (entry, epoch, last) ))
      with
      | (Fault.Injected_crash _ | Fault.Injected_error _) as e -> raise e
      | Types.Ledger_error e | Failure e ->
          (err Protocol.Exec_error "%s" e, `Keep))

(* ------------------------------------------------------------------ *)
(* Two-phase commit, participant side (requests from a coordinator).

   PREPARE rides the explicit-transaction path: the coordinator opens a
   session transaction (Begin + Exec...), then sends [Prepare {gid}].
   The vote is durable (redo + PREPARE marker fsynced by [Txn.prepare]);
   the transaction moves off the session into [t.prepared] so a dropped
   coordinator connection cannot roll it back, and the writer lock stays
   held until the decision — from this session or any other. *)

let prepare_txn t s ~gid =
  match s.s_txn with
  | None ->
      err Protocol.Txn_state "prepare %s: no transaction is open" gid
  | Some txn ->
      guard t (fun () ->
          ignore (Txn.prepare txn ~gid : (int * string) list);
          s.s_txn <- None;
          Mutex.protect t.prepared_mu (fun () ->
              Hashtbl.replace t.prepared gid (Live txn));
          Metrics.bump t.metrics "server.prepare";
          Protocol.Ok_r)

(* The decision. Idempotent: a gid this shard has never heard of — or
   already decided — answers [Ok_r], so a recovering coordinator can
   blindly re-send decisions. Commit of a [Live] transaction is a normal
   ledger commit (the COMMIT record is the durable decision marker);
   commit of a [Recovered] one re-applies the redo recovery withheld.
   Either way the writer lock finally releases and the outcome becomes
   the published read view. *)
let decide_txn t ~gid ~commit =
  let entry = Mutex.protect t.prepared_mu (fun () ->
      Hashtbl.find_opt t.prepared gid)
  in
  match entry with
  | None -> Protocol.Ok_r
  | Some entry ->
      guard t (fun () ->
          (match entry with
          | Live txn ->
              if commit then ignore (Txn.decide_commit txn : Types.txn_entry)
              else Txn.rollback txn;
              Mutex.protect t.prepared_mu (fun () ->
                  Hashtbl.remove t.prepared gid);
              publish_snapshot t;
              Rwlock.unlock_write t.lock
          | Recovered d ->
              let dbl = Database.ledger (db t) in
              if commit then begin
                (match
                   Wal_replay.apply_committed_ops (db t) ~txn_id:d.txn_id
                     d.ops
                 with
                | Ok () -> ()
                | Error e ->
                    Types.errorf
                      "redo of recovered prepared transaction %s failed: %s"
                      gid e);
                ignore
                  (Database_ledger.append_commit dbl ~txn_id:d.txn_id
                     ~commit_ts:(Unix.gettimeofday ()) ~user:d.user
                     ~table_roots:d.table_roots
                    : Types.txn_entry)
              end
              else Database_ledger.log_abort dbl ~txn_id:d.txn_id;
              let release =
                Mutex.protect t.prepared_mu (fun () ->
                    Hashtbl.remove t.prepared gid;
                    decr t.recovered_hold;
                    !(t.recovered_hold) = 0)
              in
              if release then begin
                publish_snapshot t;
                Rwlock.unlock_write t.lock
              end);
          Metrics.bump t.metrics
            (if commit then "server.decide_commit" else "server.decide_abort");
          Protocol.Ok_r)

let prepared_gids t =
  Mutex.protect t.prepared_mu (fun () ->
      Hashtbl.fold (fun gid _ acc -> gid :: acc) t.prepared [])

(* Session teardown: roll back any open transaction and release the
   exclusive lock. Called on disconnect, idle timeout, and drain. *)
let cleanup t s =
  match s.s_txn with
  | None -> ()
  | Some txn ->
      s.s_txn <- None;
      (try if Txn.is_active txn then Txn.rollback txn
       with _ -> ());
      publish_snapshot t;
      Rwlock.unlock_write t.lock

(* Requests that would mutate the ledger. A replica refuses them with
   the typed [read_only] error so a client (or a proxy) can retarget the
   write at the primary instead of treating it as a hard failure.
   [Digest] counts as a write: issuing one closes the open block, which
   would fork the replica's ledger away from the primary's. *)
let is_write_shaped = function
  | Protocol.Exec _ | Protocol.Begin | Protocol.Commit | Protocol.Rollback
  | Protocol.Create_table _ | Protocol.Checkpoint | Protocol.Digest
  | Protocol.Prepare _ | Protocol.Decide _ | Protocol.Migrate _ ->
      true
  | _ -> false

(* Shedding policy: only requests that would *start* new write work on a
   session with no open transaction are refusable. A session inside
   BEGIN...COMMIT already holds the writer lock — shedding its statements
   (or its COMMIT/ROLLBACK) would wedge the lock behind a client that is
   being told to go away. Reads are never shed: they are lock-free and
   the point of admission control is to keep them fast. *)
let sheds_under_overload s = function
  | Protocol.Exec _ | Protocol.Begin | Protocol.Create_table _
  | Protocol.Checkpoint | Protocol.Digest | Protocol.Migrate _ ->
      s.s_txn = None
  | _ -> false

(* The caller has already incremented [inflight] for this request, so the
   cap trips strictly above it. Either cap alone sheds: a deep commit
   queue means the fsync leader is behind even if dispatch slots are
   free. *)
let is_overloaded t =
  (t.max_inflight > 0 && Atomic.get t.inflight > t.max_inflight)
  || t.max_queue_depth > 0
     &&
     match queue t with
     | Some q -> Commit_queue.depth q >= t.max_queue_depth
     | None -> false

(* Retry-after hint: roughly how long until the backlog drains — the
   group-commit window (or a small constant without one) scaled by the
   queue depth, capped at a second so a transient spike does not park
   clients for long. *)
let retry_after_ms t =
  let depth = match queue t with Some q -> Commit_queue.depth q | None -> 0 in
  let base = if t.gc_window > 0.0 then t.gc_window else 0.005 in
  max 1
    (int_of_float
       (ceil (1000. *. Float.min 1.0 (base *. float_of_int (1 + depth)))))

let dispatch t s req =
  match req with
  | Protocol.Hello { version; client; principal; auth } ->
      if version <> Protocol.version then
        ( err Protocol.Version_mismatch
            "protocol version mismatch: client %d, server %d" version
            Protocol.version,
          `Close )
      else begin
        (* A claimed principal MUST verify; an absent claim keeps the
           legacy anonymous "client-N" identity, so unauthenticated
           peers (replication daemons, old clients) still work. The
           authenticated name is stored bare — it is what the
           transactions system table, receipts, replicas and 2PC
           participants all record as the row version's author. *)
        let auth_result =
          match principal with
          | None -> Ok None
          | Some "" -> Error "principal name must not be empty"
          | Some p -> (
              match (t.auth_secret, auth) with
              | None, _ ->
                  Error
                    (Printf.sprintf
                       "principal %S refused: this server holds no shared \
                        secret (start it with --auth-secret)"
                       p)
              | Some _, None ->
                  Error
                    (Printf.sprintf
                       "principal %S claimed without an auth tag" p)
              | Some secret, Some tag ->
                  if Protocol.principal_tag_ok ~secret ~name:p ~tag then
                    Ok (Some p)
                  else
                    Error (Printf.sprintf "invalid auth tag for principal %S" p)
              )
        in
        match auth_result with
        | Error message ->
            Metrics.bump t.metrics "auth.failed";
            (err Protocol.Auth_failed "%s" message, `Close)
        | Ok verified ->
            s.s_hello <- true;
            (match verified with
            | Some p -> s.s_user <- p
            | None ->
                if client <> "" then
                  s.s_user <- Printf.sprintf "%s-%d" client s.s_id);
            let database =
              match t.backend with
              | Primary _ -> Database.name (db t)
              | Replica_view { get_db; _ } -> (
                  match get_db () with
                  | Some d -> Database.name d
                  | None -> "(replica syncing)")
            in
            ( Protocol.Welcome
                {
                  version = Protocol.version;
                  server = t.server_name;
                  database;
                },
              `Keep )
      end
  | _ when not s.s_hello ->
      (err Protocol.Bad_request "first request must be hello", `Close)
  | req
    when (match t.backend with Replica_view _ -> true | Primary _ -> false)
         && is_write_shaped req -> (
      match t.backend with
      | Replica_view { primary; _ } ->
          ( err Protocol.Read_only
              "replica is read-only; writes go to the primary at %s" primary,
            `Keep )
      | Primary _ -> assert false)
  | req when sheds_under_overload s req && is_overloaded t ->
      Metrics.bump t.metrics "server.shed";
      ( err_retry Protocol.Overloaded ~retry_after_ms:(retry_after_ms t)
          "server overloaded; retry after the hinted backoff",
        `Keep )
  | Protocol.Ping -> (Protocol.Pong, `Keep)
  | Protocol.Exec { sql } -> (exec_sql t s sql, `Keep)
  | Protocol.Query { sql } -> (query_sql t s sql, `Keep)
  | Protocol.Begin -> (begin_txn t s, `Keep)
  | Protocol.Commit -> (end_txn t s ~commit:true, `Keep)
  | Protocol.Rollback -> (end_txn t s ~commit:false, `Keep)
  | Protocol.Digest -> (generate_digest t s, `Keep)
  | Protocol.Receipt { txn_id } -> (generate_receipt t s ~txn_id, `Keep)
  | Protocol.Receipts { txn_ids } -> (generate_receipts t s ~txn_ids, `Keep)
  | Protocol.Verify { tables; digests } ->
      (run_verify t s ~tables ~digest_jsons:digests, `Keep)
  | Protocol.Create_table { name; columns; key; ledger } ->
      (create_table t s ~name ~columns ~key ~ledger, `Keep)
  | Protocol.Checkpoint -> (checkpoint t s, `Keep)
  | Protocol.Subscribe { from_lsn; replica_id } ->
      subscribe t s ~from_lsn ~replica_id
  | Protocol.Stats -> (Protocol.Stats_r (Metrics.lines t.metrics), `Keep)
  | Protocol.Shard_map ->
      (* Only a coordinator owns a shard map; a shard primary answering
         one would let a client mistake a single node for a cluster. *)
      (err Protocol.Bad_request "this server is not a coordinator", `Keep)
  | Protocol.Prepare { gid } -> (prepare_txn t s ~gid, `Keep)
  | Protocol.Decide { gid; commit } -> (decide_txn t ~gid ~commit, `Keep)
  | Protocol.Migrate { source; target; after_key; limit } ->
      (migrate_batch t s ~source ~target ~after_key ~limit, `Keep)
  | Protocol.Quit -> (Protocol.Bye, `Close)

(* [handle] returns the response plus what the server should do with the
   connection afterwards: keep serving it, close it, or hand it to the
   replication feed loop. [?deadline] is the request's absolute refusal
   time, derived by the server from the envelope's [deadline_ms]; it arms
   the per-session deadline that the enforcement points above check. *)
let handle t s ?deadline req =
  s.s_arrival <- Unix.gettimeofday ();
  s.s_deadline <- deadline;
  Atomic.incr t.inflight;
  Fun.protect
    ~finally:(fun () -> Atomic.decr t.inflight)
    (fun () -> dispatch t s req)
