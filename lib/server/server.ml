(* The concurrent ledger server: TCP accept loop, one session thread per
   connection, request dispatch (writes under the Rwlock discipline,
   reads against published copy-on-write snapshots — see Dispatch), and
   a graceful shutdown that drains sessions and fsyncs the WAL.

   Lifecycle:
     start  bind + listen (distinct error for a port already in use),
            recover the database from --dir via Durable.open_dir
     run    blocking accept loop; polls with a short select timeout so
            shutdown/stats requests (set from signal handlers via the
            atomic flags) are honoured promptly
     request_shutdown / request_stats
            async-signal-safe: they only set atomics

   Sessions poll their socket in short slices too, accumulating idle
   time; an idle session (or the whole server draining) rolls back its
   open transaction, releases the lock, and closes. A stalled *mid-frame*
   read is bounded separately by SO_RCVTIMEO (the request timeout).

   Failpoints [server.accept], [server.read] and [server.write] make
   torn connections injectable: an injected error tears just that
   connection; an injected crash kills the whole server, as a real
   process crash would, so `sqlledger recover` can then be exercised
   against whatever the WAL holds. *)

open Sql_ledger
module Frame = Wire.Frame
module Protocol = Wire.Protocol

let point_accept = "server.accept"
let point_read = "server.read"
let point_write = "server.write"

let () =
  Fault.register point_accept;
  Fault.register point_read;
  Fault.register point_write

type config = {
  host : string;
  port : int;
  dir : string;
  db_name : string;
  max_connections : int;
  max_frame : int;
  idle_timeout : float;  (** seconds between requests; 0 = unlimited *)
  request_timeout : float;  (** seconds mid-frame (SO_RCVTIMEO); 0 = unlimited *)
  group_commit_window : float;
      (** seconds the commit leader coalesces concurrent auto-commit
          writers into one batched WAL append + fsync; 0 disables group
          commit (every commit pays its own fsync, the legacy path) *)
  heartbeat_interval : float;
      (** seconds between replication heartbeats on an idle stream *)
  max_inflight : int;
      (** cap on requests in dispatch across all sessions; past it,
          requests that would start new write work are shed with the
          typed [overloaded] error. 0 = unlimited *)
  max_queue_depth : int;
      (** cap on staged commits waiting for the group-commit leader;
          same shedding behaviour. 0 = unlimited *)
  block_size : int option;
      (** ledger block capacity passed to {!Durable.open_dir} when the
          server creates the database; [None] = the library default.
          Small blocks close often, which is what receipt issuance and
          the audit daemon feed on *)
  signing_seed : string option;
      (** deterministic Lamport key-chain seed for block signatures;
          [None] = unsigned blocks *)
  auth_secret : string option;
      (** shared-secret contents for principal authentication; [None]
          refuses every principal claim (anonymous sessions still work) *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7878;
    dir = ".";
    db_name = "served";
    max_connections = 64;
    max_frame = Frame.default_max_frame;
    idle_timeout = 60.0;
    request_timeout = 30.0;
    group_commit_window = 0.0005;
    heartbeat_interval = 1.0;
    max_inflight = 0;
    max_queue_depth = 0;
    block_size = None;
    signing_seed = None;
    auth_secret = None;
  }

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  actual_port : int;
  durable : Durable.t option;  (* [None] on a replica read port *)
  repl_mgr : Repl.Manager.t option;  (* primary-side replication registry *)
  disp : Dispatch.t;
  metrics : Metrics.t;
  stop : bool Atomic.t;
  stats_requested : bool Atomic.t;
  crash : exn option Atomic.t;
  sessions : (int, Thread.t) Hashtbl.t;
  sm : Mutex.t;
  mutable next_session : int;
}

type start_error =
  | Port_in_use of string
  | Startup of string

let start_error_to_string = function Port_in_use m | Startup m -> m

let port t = t.actual_port
let metrics t = t.metrics
let durable t = t.durable

(* Replica apply path: republish the served read snapshot after a batch
   lands. Must be called while holding the node's writer lock. *)
let refresh_snapshot t = Dispatch.refresh_snapshot t.disp

let request_shutdown t = Atomic.set t.stop true
let request_stats t = Atomic.set t.stats_requested true

let bind_listen config =
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  let addr =
    Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port)
  in
  match Unix.bind lsock addr with
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
      (try Unix.close lsock with Unix.Unix_error _ -> ());
      Error
        (Port_in_use
           (Printf.sprintf "%s:%d: address already in use" config.host
              config.port))
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close lsock with Unix.Unix_error _ -> ());
      Error
        (Startup
           (Printf.sprintf "cannot bind %s:%d: %s" config.host config.port
              (Unix.error_message e)))
  | () ->
      Unix.listen lsock 64;
      let actual_port =
        match Unix.getsockname lsock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> config.port
      in
      Ok (lsock, actual_port)

let start ?(config = default_config) () =
  if Repl.Client.is_replica_dir config.dir then
    Error
      (Startup
         (Printf.sprintf
            "%s is a replica directory; run `sqlledger promote --dir %s` \
             before serving it as a primary"
            config.dir config.dir))
  else
    match
      Durable.open_dir ?block_size:config.block_size
        ?signing_seed:config.signing_seed ~dir:config.dir
        ~name:config.db_name ()
    with
    | Error e -> Error (Startup e)
    | Ok durable -> (
        match bind_listen config with
        | Error e -> Error e
        | Ok (lsock, actual_port) ->
            let metrics = Metrics.create () in
            let ledger () = Database.ledger (Durable.db durable) in
            (* The replication registry also feeds the §3.6 digest gate:
               digests only cover commits every known replica has acked,
               so a failover to any of them loses nothing a digest
               attests to. With no replica ever registered the gate is
               wide open (single-node deployments are unaffected). *)
            let repl_mgr =
              Repl.Manager.create
                ~last_lsn:(fun () ->
                  Aries.Wal.last_lsn (Database_ledger.wal (ledger ())))
                ~last_commit_ts:(fun () ->
                  Database_ledger.last_commit_ts (ledger ()))
            in
            Metrics.register_lines metrics (fun () ->
                Repl.Manager.lines repl_mgr);
            let store =
              Trusted_store.Worm_store.create
                ~dir:(Filename.concat config.dir "worm")
                ()
            in
            let digests =
              Trusted_store.Digest_manager.create
                ~replicated_upto:(fun () ->
                  Repl.Manager.replicated_upto repl_mgr)
                ~store ()
            in
            Ok
              {
                cfg = config;
                lsock;
                actual_port;
                durable = Some durable;
                repl_mgr = Some repl_mgr;
                disp =
                  Dispatch.create
                    ~group_commit_window:config.group_commit_window
                    ~max_inflight:config.max_inflight
                    ~max_queue_depth:config.max_queue_depth
                    ?auth_secret:config.auth_secret ~repl:repl_mgr ~digests
                    ~durable ~metrics ~server_name:"sqlledger/1.0" ();
                metrics;
                stop = Atomic.make false;
                stats_requested = Atomic.make false;
                crash = Atomic.make None;
                sessions = Hashtbl.create 16;
                sm = Mutex.create ();
                next_session = 0;
              })

(* A read-only server over a replica's materialised database: same
   accept/session machinery, [Dispatch.create_replica] personality, no
   durable directory of its own (the replication client owns the disk
   state). The [lock] is shared with the client's apply path. *)
let start_replica ?(config = default_config) ~primary ~get_db ~lock () =
  match bind_listen config with
  | Error e -> Error e
  | Ok (lsock, actual_port) ->
      let metrics = Metrics.create () in
      Ok
        {
          cfg = config;
          lsock;
          actual_port;
          durable = None;
          repl_mgr = None;
          disp =
            Dispatch.create_replica ?auth_secret:config.auth_secret ~lock
              ~get_db ~primary ~metrics ~server_name:"sqlledger-replica/1.0"
              ();
          metrics;
          stop = Atomic.make false;
          stats_requested = Atomic.make false;
          crash = Atomic.make None;
          sessions = Hashtbl.create 16;
          sm = Mutex.create ();
          next_session = 0;
        }

(* ------------------------------------------------------------------ *)
(* Sessions *)

(* A fault crash anywhere kills the whole server, like a real crash. *)
let record_crash t e =
  Atomic.set t.crash (Some e);
  Atomic.set t.stop true

let send_response t conn ~id resp =
  match Frame.send ~point:point_write conn (Protocol.encode_response ~id resp) with
  | () -> `Sent
  | exception Fault.Injected_error _ -> `Torn
  | exception (Fault.Injected_crash _ as e) ->
      record_crash t e;
      `Torn
  | exception (Sys_error _ | Unix.Unix_error _) -> `Torn

let handle_frame t session conn payload =
  match Protocol.decode_request payload with
  | Error msg ->
      send_response t conn ~id:0
        (Protocol.Error_r
           { code = Protocol.Bad_request; message = msg; retry_after_ms = None; map_epoch = None })
  | Ok (id, deadline_ms, _map_epoch, req) -> (
      (* [_map_epoch]: shard-map routing stamps are a coordinator concern;
         a plain server (or shard primary reached directly) ignores them. *)
      let t0 = Unix.gettimeofday () in
      (* The envelope's budget is relative to *our* clock from the moment
         the request was decoded — client and server clocks never get
         compared, only durations travel on the wire. *)
      let deadline =
        Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.)) deadline_ms
      in
      match Dispatch.handle t.disp session ?deadline req with
      | exception (Fault.Injected_crash _ as e) ->
          record_crash t e;
          `Torn
      | exception e ->
          let resp =
            Protocol.Error_r
              {
                code = Protocol.Internal;
                message = Printexc.to_string e;
                retry_after_ms = None;
                map_epoch = None;
              }
          in
          Metrics.record t.metrics ~kind:(Protocol.request_kind req)
            ~error:true
            ~us:((Unix.gettimeofday () -. t0) *. 1e6);
          send_response t conn ~id resp
      | resp, action -> (
          Metrics.record t.metrics ~kind:(Protocol.request_kind req)
            ~error:(Protocol.response_is_error resp)
            ~us:((Unix.gettimeofday () -. t0) *. 1e6);
          match send_response t conn ~id resp with
          | `Sent -> (
              match action with
              | `Close -> `Quit
              | `Keep -> `Sent
              | `Stream (entry, epoch, from_lsn) ->
                  `Stream (entry, epoch, from_lsn))
          | `Torn ->
              (* A subscriber registered but never saw the accept frame:
                 mark it disconnected so the lag metrics tell the truth
                 (it stays in the digest gate, as any known replica
                 must). *)
              (match action with
              | `Stream (entry, epoch, _) ->
                  Option.iter
                    (fun mgr -> Repl.Manager.disconnect mgr entry ~epoch)
                    t.repl_mgr
              | `Keep | `Close -> ());
              `Torn))

(* ------------------------------------------------------------------ *)
(* Replication feed *)

(* How many WAL records ride in one stream frame. Bounds frame size and
   keeps the replica's durable-apply-ack cadence fine-grained while a
   backlog is draining. *)
let stream_chunk = 256

let rec split_chunk n acc = function
  | rest when n = 0 -> (List.rev acc, rest)
  | [] -> (List.rev acc, [])
  | r :: rest -> split_chunk (n - 1) (r :: acc) rest

(* After [Subscribe] is accepted the session thread becomes the feed for
   that replica: tail the WAL from the agreed position, ship batches,
   heartbeat when idle, and fold incoming acks into the manager (which
   the digest gate and the lag metrics read).

   The WAL is tailed *without* the engine lock: [Wal.records_from] walks
   an immutable snapshot of the record list, so the feed never stalls
   writers. The known race is benign in one direction and fatal in the
   other: a record can be shipped before the primary's own fsync
   completes, so after a primary crash a replica may be *ahead* — which
   the subscribe handler detects as divergence (§3.6's bounded loss
   window covers exactly the unshipped/unsynced tail). *)
let feed_replication t conn entry ~epoch ~from_lsn =
  match (t.repl_mgr, t.durable) with
  | Some mgr, Some durable ->
      let ledger = Database.ledger (Durable.db durable) in
      (* The WAL handle is re-fetched every iteration, never captured:
         a checkpoint/compaction swaps the ledger's [Wal.t]
         ([Database_ledger.attach_wal]), and tailing the old handle
         would silently stop delivering records while heartbeats keep
         reporting a stale position. *)
      let wal () = Database_ledger.wal ledger in
      let sent = ref from_lsn in
      let last_send = ref (Unix.gettimeofday ()) in
      let closing = ref false in
      (try
         while not !closing do
           if Atomic.get t.stop then closing := true
           else if not (Repl.Manager.current mgr entry ~epoch) then
             (* A newer subscription for the same replica identity has
                taken the entry over: stand down without touching it. *)
             closing := true
           else begin
             (* Drain acks without blocking. *)
             while (not !closing) && Frame.poll conn 0.0 do
               match Frame.recv ~point:point_read conn with
               | Frame.Frame payload -> (
                   match Repl.Stream.decode payload with
                   | Ok (Repl.Stream.Ack { last_lsn; replicated_upto }) ->
                       Repl.Manager.ack mgr entry ~last_lsn
                         ~upto:replicated_upto
                   | Ok _ | Error _ -> closing := true)
               | Frame.Eof | Frame.Junk _ | Frame.Truncated
               | Frame.Oversized _ ->
                   closing := true
             done;
             if not !closing then begin
               let w = wal () in
               (* Same servability test the subscribe handler runs: if
                  compaction truncated the log past this stream's
                  position, the missing records now live only in the
                  snapshot — tear the stream down so the replica
                  resubscribes (and is shipped a snapshot). *)
               let servable =
                 match Aries.Wal.first_available w with
                 | None -> !sent >= Aries.Wal.last_lsn w
                 | Some f -> !sent >= f - 1
               in
               if not servable then closing := true
               else
                 match Aries.Wal.records_from w !sent with
                 | [] ->
                     let now = Unix.gettimeofday () in
                     if now -. !last_send >= t.cfg.heartbeat_interval then begin
                       Frame.send ~point:point_write conn
                         (Repl.Stream.encode_heartbeat ~last_lsn:!sent);
                       last_send := now
                     end
                     else
                       (* Idle pacing that doubles as an ack wait. *)
                       ignore (Frame.poll conn 0.05 : bool)
                 | records ->
                     let rec ship = function
                       | [] -> ()
                       | rs ->
                           let chunk, rest = split_chunk stream_chunk [] rs in
                           let payload = Repl.Stream.encode_batch chunk in
                           Frame.send ~point:point_write conn payload;
                           Repl.Manager.add_bytes mgr entry
                             (String.length payload);
                           (match List.rev chunk with
                           | (l, _) :: _ -> sent := l
                           | [] -> ());
                           ship rest
                     in
                     ship records;
                     last_send := Unix.gettimeofday ()
             end
           end
         done
       with
      | Fault.Injected_error _ | Sys_error _ | Unix.Unix_error _ -> ()
      | Fault.Injected_crash _ as e -> record_crash t e);
      Repl.Manager.disconnect mgr entry ~epoch
  | _ -> ()

(* Some platforms (and some socket emulation layers) reject SO_RCVTIMEO.
   Probe once on a throwaway socketpair and say so at the first session,
   instead of silently losing the mid-frame stall bound on every
   connection. Either way [Frame.recv]'s [read_timeout] below enforces a
   *total* per-frame deadline with select, which is the stronger
   guarantee (SO_RCVTIMEO is per-read: a peer dribbling one byte per
   timeout slice resets it forever); the socket option stays on as a
   cheap kernel-side backstop where it works. *)
let rcvtimeo_supported =
  lazy
    (let probe () =
       let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       let ok =
         try
           Unix.setsockopt_float a Unix.SO_RCVTIMEO 1.0;
           true
         with Unix.Unix_error _ -> false
       in
       (try Unix.close a with Unix.Unix_error _ -> ());
       (try Unix.close b with Unix.Unix_error _ -> ());
       ok
     in
     let ok = try probe () with Unix.Unix_error _ -> false in
     if not ok then
       prerr_endline
         "sqlledger: SO_RCVTIMEO is not supported here; mid-frame stalls \
          are bounded by the select-based frame deadline instead";
     ok)

let session_loop t sid fd =
  if t.cfg.request_timeout > 0.0 && Lazy.force rcvtimeo_supported then
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.request_timeout
     with Unix.Unix_error _ -> ());
  let read_timeout =
    if t.cfg.request_timeout > 0.0 then Some t.cfg.request_timeout else None
  in
  let conn = Frame.of_fd fd in
  let session = Dispatch.new_session ~id:sid in
  let idle = ref 0.0 in
  let slice = 0.2 in
  let closing = ref false in
  while not !closing do
    if Atomic.get t.stop then closing := true
    else if Frame.poll conn slice then begin
      idle := 0.0;
      match
        Frame.recv ~point:point_read ~max_frame:t.cfg.max_frame ?read_timeout
          conn
      with
      | Frame.Frame payload -> (
          match handle_frame t session conn payload with
          | `Sent -> ()
          | `Quit | `Torn -> closing := true
          | `Stream (entry, epoch, from_lsn) ->
              feed_replication t conn entry ~epoch ~from_lsn;
              closing := true)
      | Frame.Eof | Frame.Truncated -> closing := true
      | Frame.Junk bytes ->
          ignore
            (send_response t conn ~id:0
               (Protocol.Error_r
                  {
                    code = Protocol.Bad_request;
                    message =
                      Printf.sprintf "stream desynchronised (junk %S)" bytes;
                    retry_after_ms = None;
                map_epoch = None;
                  }));
          closing := true
      | Frame.Oversized { size; limit } ->
          ignore
            (send_response t conn ~id:0
               (Protocol.Error_r
                  {
                    code = Protocol.Too_large;
                    message =
                      Printf.sprintf "frame of %d bytes exceeds limit %d" size
                        limit;
                    retry_after_ms = None;
                map_epoch = None;
                  }));
          closing := true
      | exception Fault.Injected_error _ -> closing := true
      | exception (Fault.Injected_crash _ as e) ->
          record_crash t e;
          closing := true
      | exception Unix.Unix_error _ -> closing := true
    end
    else begin
      idle := !idle +. slice;
      if t.cfg.idle_timeout > 0.0 && !idle >= t.cfg.idle_timeout then
        closing := true
    end
  done;
  Dispatch.cleanup t.disp session;
  Frame.close conn;
  Metrics.connection_closed t.metrics;
  Mutex.lock t.sm;
  Hashtbl.remove t.sessions sid;
  Mutex.unlock t.sm

let reject_busy t fd =
  Metrics.connection_rejected t.metrics;
  let conn = Frame.of_fd fd in
  (try
     Frame.send conn
       (Protocol.encode_response ~id:0
          (Protocol.Error_r
             {
               code = Protocol.Busy;
               message =
                 Printf.sprintf "server at its %d-connection limit"
                   t.cfg.max_connections;
               retry_after_ms = None;
                map_epoch = None;
             }))
   with Sys_error _ | Unix.Unix_error _ -> ());
  Frame.close conn

let spawn_session t fd =
  Mutex.lock t.sm;
  if Hashtbl.length t.sessions >= t.cfg.max_connections then begin
    Mutex.unlock t.sm;
    reject_busy t fd
  end
  else begin
    t.next_session <- t.next_session + 1;
    let sid = t.next_session in
    Metrics.connection_opened t.metrics;
    let th = Thread.create (fun () -> session_loop t sid fd) () in
    Hashtbl.add t.sessions sid th;
    Mutex.unlock t.sm
  end

(* ------------------------------------------------------------------ *)
(* Accept loop and shutdown *)

let drain t =
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  let threads =
    Mutex.lock t.sm;
    let l = Hashtbl.fold (fun _ th acc -> th :: acc) t.sessions [] in
    Mutex.unlock t.sm;
    l
  in
  List.iter Thread.join threads;
  (* Durability point of the drain: publish any batch still queued, then
     force everything appended onto disk. (A replica read port owns no
     durable state; its replication client syncs its own log.) *)
  Dispatch.flush_queue t.disp;
  Option.iter
    (fun durable ->
      Aries.Wal.sync (Database_ledger.wal (Database.ledger (Durable.db durable))))
    t.durable

let run ?(dump_metrics_to = stderr) t =
  while not (Atomic.get t.stop) do
    if Atomic.exchange t.stats_requested false then
      Metrics.dump t.metrics dump_metrics_to;
    match Unix.select [ t.lsock ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
        match Fault.trip point_accept with
        | exception Fault.Injected_error _ -> (
            (* A torn accept: take the connection and drop it. *)
            match Unix.accept t.lsock with
            | fd, _ -> ( try Unix.close fd with Unix.Unix_error _ -> ())
            | exception Unix.Unix_error (_, _, _) -> ())
        | exception (Fault.Injected_crash _ as e) -> record_crash t e
        | () -> (
            match Unix.accept t.lsock with
            | exception
                Unix.Unix_error
                  ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN), _, _) ->
                ()
            | fd, _ -> spawn_session t fd))
  done;
  drain t;
  Metrics.dump t.metrics dump_metrics_to;
  match Atomic.get t.crash with Some e -> raise e | None -> ()

(* Convenience for tests and bench: run in a background thread, stop it
   later with [shutdown]. *)
let run_async ?dump_metrics_to t =
  Thread.create (fun () -> try run ?dump_metrics_to t with _ -> ()) ()

let shutdown t th =
  request_shutdown t;
  Thread.join th
