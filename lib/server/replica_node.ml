(* A replica node = one replication client (pulling the stream from the
   primary, materialising the database, persisting a durable copy) plus
   one read-only server over that database (paper §3.6's readable
   secondary).

   The two halves share a single Rwlock, but only the client's apply
   path takes it (the writer side, around each batch). After each
   applied batch the apply path publishes a COW snapshot of the
   materialised database; the server's dispatch serves every read from
   the latest published snapshot without locking, so reads never observe
   a half-applied batch and never block the stream at all. Before the
   first batch lands nothing is published and dispatch falls back to the
   reader side of the lock.

   The client losing the primary (crash, network) does not stop the
   node: reads keep being served from the last applied state while the
   client reconnects with backoff. Only a fatal condition (divergence,
   misconfiguration, injected replica crash) stops the client — the
   server still serves, and the metrics expose [connected 0] plus the
   last error so an operator can decide to promote. *)

type t = {
  client : Repl.Client.t;
  server : Server.t;
  lock : Rwlock.t;
}

let start ?(config = Server.default_config) ~primary_host ~primary_port () =
  match
    Repl.Client.open_dir ~primary_host ~primary_port ~dir:config.Server.dir ()
  with
  | Error e -> Error (Server.Startup e)
  | Ok client -> (
      let lock = Rwlock.create () in
      let get_db () = Repl.Client.database client in
      let primary = Printf.sprintf "%s:%d" primary_host primary_port in
      match Server.start_replica ~config ~primary ~get_db ~lock () with
      | Error e ->
          Repl.Client.close client;
          Error e
      | Ok server ->
          Metrics.register_lines (Server.metrics server) (fun () ->
              Repl.Client.metric_lines client);
          Ok { client; server; lock })

let client t = t.client
let server t = t.server
let port t = Server.port t.server
let metrics t = Server.metrics t.server
let request_shutdown t = Server.request_shutdown t.server
let request_stats t = Server.request_stats t.server

(* Blocks until shutdown is requested (or the server crashes via a fault
   injection). The replication client runs on its own thread; each of its
   writer sections ends by publishing the newly materialised state as the
   read dispatch's served snapshot — still under the lock, so a reader on
   the pre-publish fallback path can never interleave with the apply. *)
let run ?dump_metrics_to t =
  let with_write f =
    Rwlock.write t.lock (fun () ->
        let r = f () in
        Server.refresh_snapshot t.server;
        r)
  in
  let th =
    Thread.create
      (fun () -> try Repl.Client.run t.client ~with_write with _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Repl.Client.stop t.client;
      Thread.join th;
      Repl.Client.close t.client)
    (fun () -> Server.run ?dump_metrics_to t.server)

let run_async ?dump_metrics_to t =
  Thread.create (fun () -> try run ?dump_metrics_to t with _ -> ()) ()

let shutdown t th =
  request_shutdown t;
  Thread.join th
