(* Group commit (paper §3.3.2: commits batch into the Database Ledger's
   blocks; GlassDB-style shared persistence epochs).

   Writer sessions stage their transaction under the engine's exclusive
   lock (`Dml.execute_statement_staged`), enqueue the staged WAL records
   here *before releasing the lock*, then release it and wait. The first
   waiter that finds no active leader becomes the leader: it sleeps a
   short coalescing window, drains the queue FIFO, appends every staged
   record as one batch-atomic WAL frame under a single fsync
   (`Wal.append_batch`), feeds the batch's entries to the ledger's block
   accumulator (`Database_ledger.accumulate_batch`), and only then wakes
   the batch's waiters. The expensive part of commit — the durability
   barrier — thus runs *outside* the engine lock, overlapped with the
   execution of the next batch, and its cost is shared by every commit in
   the batch.

   Invariants this module relies on (and the server upholds):

   - Tickets are enqueued while holding the engine's writer lock, so
     queue order is execution order; the leader preserves it, so WAL
     order equals execution order (replay applies DATA records in log
     order — reordering two transactions' writes would corrupt replay).

   - The WAL is single-writer. The leader appends without holding the
     engine lock, so every other code path that appends WAL records
     directly (explicit BEGIN...COMMIT sessions, DDL, checkpoints,
     digests — they log immediately) must call [flush] after acquiring
     the writer lock and before its first append. While the caller holds
     the writer lock no new ticket can arrive, so after [flush] the log
     is quiescent until the lock is released.

   - The leader is also the snapshot publisher: each ticket carries a
     COW [Database.snapshot] captured at enqueue (under the writer
     lock), and after the batch's fsync the leader hands the newest
     ticket's snapshot to [on_publish] — the dispatch layer's atomic
     swap of the served read view. Readers therefore observe only
     durable state, and always their own acked writes.

   - A publish failure poisons the queue: the staged commits are already
     applied in the engine and cannot be unwound, so the failed batch's
     waiters and every later submitter get the same exception, and no
     further batch is ever attempted (a later batch succeeding would
     leave an acknowledged-ordinal gap on disk). The server treats this
     like a crash of the durability layer: fail loudly, accept no more
     commits. *)

type state = Pending | Done | Failed of exn

type ticket = {
  t_entry : Sql_ledger.Types.txn_entry;
  t_records : Aries.Log_record.t list;
  t_snapshot : Sql_ledger.Database.t;
      (* COW capture taken at enqueue, under the writer lock, so it holds
         this commit's staged effects and everything that staged before
         it — exactly what becomes durable when this batch publishes *)
  mutable t_state : state;
}

type t = {
  window : float;  (* max seconds the leader coalesces before flushing *)
  ledger : Sql_ledger.Database_ledger.t;
  metrics : Metrics.t;
  on_publish : Sql_ledger.Database.t -> unit;
      (* called by the leader after each durable batch with the newest
         ticket's snapshot: the dispatch layer swaps it in as the served
         read view, so readers only ever observe fsynced state *)
  m : Mutex.t;
  c : Condition.t;  (* broadcast on any state change *)
  mutable pending : ticket list;  (* newest first *)
  mutable n_pending : int;  (* length of [pending], kept for O(1) depth *)
  mutable leading : bool;
  mutable poisoned : exn option;
}

let create ?(on_publish = fun _ -> ()) ~window ~ledger ~metrics () =
  {
    window;
    ledger;
    metrics;
    on_publish;
    m = Mutex.create ();
    c = Condition.create ();
    pending = [];
    n_pending = 0;
    leading = false;
    poisoned = None;
  }

(* Lock-free-ish depth probe for admission control: a torn read costs an
   admission decision one ticket of accuracy, nothing more. *)
let depth t = t.n_pending

(* Caller must hold the engine's writer lock: ordering relies on it, and
   so does the snapshot — captured under the lock, it cannot contain a
   later commit's half-staged effects. *)
let enqueue t ~entry ~records ~snapshot =
  Mutex.lock t.m;
  match t.poisoned with
  | Some e ->
      Mutex.unlock t.m;
      raise e
  | None ->
      let ticket =
        {
          t_entry = entry;
          t_records = records;
          t_snapshot = snapshot;
          t_state = Pending;
        }
      in
      t.pending <- ticket :: t.pending;
      t.n_pending <- t.n_pending + 1;
      let depth_now = t.n_pending in
      Mutex.unlock t.m;
      Metrics.high_water t.metrics "commit.queue_depth" depth_now;
      ticket

(* Leader-side coalescing: sleep in short slices, cutting the batch as
   soon as arrivals stall; the window is a hard deadline that bounds
   both batch size and the first waiter's latency when writers keep
   arriving back-to-back.
   Cutting *before* the whole convoy has staged is deliberate: the
   batch's fsync then overlaps the remaining writers' execution, which
   is where group commit's throughput comes from — a full-convoy cut
   would serialise fsync behind execution again. Called without
   [t.m]. *)
let wait_window t =
  let slice = t.window /. 4.0 in
  let deadline = Unix.gettimeofday () +. t.window in
  let pending_count () =
    Mutex.lock t.m;
    let n = t.n_pending in
    Mutex.unlock t.m;
    n
  in
  let rec go last_n =
    Thread.delay slice;
    let n = pending_count () in
    if n > last_n && Unix.gettimeofday () < deadline then go n
  in
  go (pending_count ())

(* Publish everything pending as one batch. Called with [t.m] held and
   [t.leading] set; releases the mutex around the I/O and re-acquires it
   before returning. *)
let publish t =
  let batch = List.rev t.pending in
  t.pending <- [];
  t.n_pending <- 0;
  let poisoned = t.poisoned in
  Mutex.unlock t.m;
  let result =
    match poisoned with
    | Some e -> Error e
    | None -> (
        try
          let t0 = Unix.gettimeofday () in
          let records = List.concat_map (fun k -> k.t_records) batch in
          ignore
            (Aries.Wal.append_batch
               (Sql_ledger.Database_ledger.wal t.ledger)
               records
              : int list);
          Sql_ledger.Database_ledger.accumulate_batch t.ledger
            (List.map (fun k -> k.t_entry) batch);
          let us = (Unix.gettimeofday () -. t0) *. 1e6 in
          Metrics.record t.metrics ~kind:"commit.flush_latency" ~error:false
            ~us;
          Metrics.record t.metrics ~kind:"commit.batch_size" ~error:false
            ~us:(float_of_int (List.length batch));
          (* The whole batch is durable: publish the newest ticket's
             snapshot (it contains every commit in the batch) as the
             served read view. Leaders are serialized by [t.leading] and
             direct writers serialize against them through [flush], so
             installs are ordered. Publishing before the waiters wake
             means a session that gets its ack always finds its own
             write in the next snapshot it reads (read-your-writes). *)
          let rec newest = function
            | [ k ] -> Some k
            | _ :: tl -> newest tl
            | [] -> None
          in
          Option.iter (fun k -> t.on_publish k.t_snapshot) (newest batch);
          Ok ()
        with e -> Error e)
  in
  Mutex.lock t.m;
  (match result with
  | Ok () -> List.iter (fun k -> k.t_state <- Done) batch
  | Error e ->
      List.iter (fun k -> k.t_state <- Failed e) batch;
      t.poisoned <- Some e)
(* No broadcast here: both callers clear [leading] and broadcast once,
   still under [t.m], so each batch costs one wakeup storm, not two. *)

(* Wait until the ticket's batch is durable. The first waiter with no
   active leader elects itself leader and publishes; everyone else sleeps
   until woken. Raises the publish failure, if any. *)
let await t ticket =
  Mutex.lock t.m;
  let rec loop () =
    match ticket.t_state with
    | Done -> Mutex.unlock t.m
    | Failed e ->
        Mutex.unlock t.m;
        raise e
    | Pending ->
        if t.leading then begin
          Condition.wait t.c t.m;
          loop ()
        end
        else begin
          t.leading <- true;
          if t.window > 0.0 then begin
            Mutex.unlock t.m;
            wait_window t;
            Mutex.lock t.m
          end;
          if t.pending <> [] then publish t;
          t.leading <- false;
          Condition.broadcast t.c;
          loop ()
        end
  in
  loop ()

(* Drain the queue completely, publishing without a coalescing window.
   Callers hold the engine's writer lock (so no new ticket can arrive) or
   have joined every session (server drain); either way the queue is
   empty and idle when this returns, and the WAL is safe to append to
   directly until the caller's exclusion ends. Never raises: a poisoned
   queue has already resolved every ticket, and the caller's own WAL
   append will surface the broken log. *)
let flush t =
  Mutex.lock t.m;
  let rec loop () =
    if t.leading then begin
      Condition.wait t.c t.m;
      loop ()
    end
    else if t.pending <> [] then begin
      t.leading <- true;
      publish t;
      t.leading <- false;
      Condition.broadcast t.c;
      loop ()
    end
  in
  loop ();
  Mutex.unlock t.m
