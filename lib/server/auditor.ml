(* The incremental audit daemon: a replication client that verifies each
   newly closed block as it streams in, against the last trusted
   high-water mark.

   The daemon is a read-only follower built from the same parts as a
   replica node — {!Repl.Client} materialises the primary's state in a
   local directory — but instead of serving reads it audits. After every
   applied batch it runs {!Sql_ledger.Incremental_audit.scan} from its
   persisted mark: only blocks closed since the mark are re-hashed, the
   mark block itself is re-anchored (O(1) tamper evidence for the
   verified prefix), and the advanced mark is written atomically to
   [audit.json] in the daemon's directory. A SIGKILL therefore costs
   nothing: the restarted daemon resumes from the persisted mark instead
   of rescanning history.

   The one-time bootstrap — the first run, before any mark exists — is a
   full {!Sql_ledger.Verifier.verify}: invariants the incremental path
   delegates to it (table/history state against the entries, indexes)
   are checked once, then the mark takes over.

   A violation is terminal. The daemon stops streaming, keeps the
   verdict (violations plus the pinned block), and {!run} returns it; it
   never advances the mark past a bad block, so a restart re-detects the
   same tampering. *)

open Sql_ledger
module Audit_mark = Trusted_store.Audit_mark

let mark_file = "audit.json"
let mark_path ~dir = Filename.concat dir mark_file

type verdict = {
  v_violations : Verifier.violation list;
  v_pinned_block : int option;
}

type t = {
  client : Repl.Client.t;
  path : string;  (* persisted mark *)
  log : string -> unit;
  mu : Mutex.t;
  mutable mark : Incremental_audit.mark option;
  mutable bootstrapped : bool;
  mutable blocks_checked : int;  (* freshly verified blocks, this process *)
  mutable scans : int;
  mutable verdict : verdict option;
}

let client t = t.client
let verdict t = Mutex.protect t.mu (fun () -> t.verdict)
let mark t = Mutex.protect t.mu (fun () -> t.mark)
let blocks_checked t = Mutex.protect t.mu (fun () -> t.blocks_checked)
let stop t = Repl.Client.stop t.client

let metric_lines t =
  Mutex.protect t.mu (fun () ->
      [
        Printf.sprintf "sqlledger_audit_mark_block %d"
          (match t.mark with Some m -> m.Incremental_audit.m_block_id | None -> -1);
        Printf.sprintf "sqlledger_audit_blocks_checked_total %d" t.blocks_checked;
        Printf.sprintf "sqlledger_audit_scans_total %d" t.scans;
        Printf.sprintf "sqlledger_audit_tampered %d"
          (match t.verdict with Some _ -> 1 | None -> 0);
      ]
      @ Repl.Client.metric_lines t.client)

let create ?(log = fun _ -> ()) ?(bootstrap = false) ~primary_host
    ~primary_port ~dir () =
  match Repl.Client.open_dir ~primary_host ~primary_port ~dir () with
  | Error e -> Error e
  | Ok client -> (
      let path = mark_path ~dir in
      let persisted =
        if bootstrap then Ok None else Audit_mark.load ~path
      in
      match persisted with
      | Error e ->
          Repl.Client.close client;
          Error e
      | Ok persisted ->
          let mark =
            Option.map (fun (m : Audit_mark.t) -> m.Audit_mark.mark) persisted
          in
          (match mark with
          | Some m ->
              log
                (Printf.sprintf
                   "audit: resuming from persisted mark (block %d); skipping \
                    the verified prefix"
                   m.Incremental_audit.m_block_id)
          | None -> log "audit: no persisted mark; full bootstrap verify ahead");
          Ok
            {
              client;
              path;
              log;
              mu = Mutex.create ();
              mark;
              (* A persisted mark proves a past bootstrap completed. *)
              bootstrapped = mark <> None;
              blocks_checked = 0;
              scans = 0;
              verdict = None;
            })

let record_violations t (violations : Verifier.violation list) ~pinned =
  List.iter
    (fun v -> t.log ("audit: " ^ Verifier.violation_to_string v))
    violations;
  (match pinned with
  | Some b -> t.log (Printf.sprintf "audit: TAMPERING DETECTED at block %d" b)
  | None -> t.log "audit: TAMPERING DETECTED");
  t.verdict <- Some { v_violations = violations; v_pinned_block = pinned }

(* One audit pass over the materialised database. Caller holds [t.mu].
   Returns [`Stop] when a violation ends the stream. *)
let audit_locked t =
  match Repl.Client.database t.client with
  | None -> `Continue  (* nothing materialised yet *)
  | Some db ->
      if t.verdict <> None then `Stop
      else begin
        let bootstrap_ok =
          if t.bootstrapped then true
          else begin
            let report = Verifier.verify db ~digests:[] in
            t.blocks_checked <- t.blocks_checked + report.Verifier.blocks_checked;
            if Verifier.ok report then begin
              t.log
                (Printf.sprintf
                   "audit: bootstrap verify OK (%d blocks, %d transactions, \
                    %d row versions)"
                   report.Verifier.blocks_checked
                   report.Verifier.transactions_checked
                   report.Verifier.versions_checked);
              t.bootstrapped <- true;
              true
            end
            else begin
              record_violations t report.Verifier.violations
                ~pinned:
                  (Incremental_audit.pinned_block
                     {
                       Incremental_audit.o_mark = None;
                       o_violations = report.Verifier.violations;
                       o_blocks_checked = report.Verifier.blocks_checked;
                     });
              false
            end
          end
        in
        if not bootstrap_ok then `Stop
        else begin
          let outcome = Incremental_audit.scan db ~from:t.mark in
          t.scans <- t.scans + 1;
          t.blocks_checked <-
            t.blocks_checked + outcome.Incremental_audit.o_blocks_checked;
          if not (Incremental_audit.ok outcome) then begin
            (* The mark stops at the last clean block; persist that, not
               the bad one, so a restart re-detects the tampering. *)
            record_violations t outcome.Incremental_audit.o_violations
              ~pinned:(Incremental_audit.pinned_block outcome);
            `Stop
          end
          else begin
            (match outcome.Incremental_audit.o_mark with
            | Some m
              when Some m.Incremental_audit.m_block_id
                   <> Option.map
                        (fun (x : Incremental_audit.mark) -> x.m_block_id)
                        t.mark ->
                t.mark <- Some m;
                Audit_mark.save ~path:t.path m;
                t.log
                  (Printf.sprintf
                     "audit: verified %d new block(s); mark -> block %d"
                     outcome.Incremental_audit.o_blocks_checked
                     m.Incremental_audit.m_block_id)
            | _ -> ());
            `Continue
          end
        end
      end

(* Stream from the primary, auditing after every applied batch. Blocks
   until the client stops: operator request ({!stop}), a fatal
   replication error, or a violation. Returns the verdict ([None] =
   everything seen so far verified clean). *)
let run t =
  let with_write f =
    Mutex.protect t.mu (fun () ->
        let r = f () in
        (match audit_locked t with
        | `Continue -> ()
        | `Stop -> Repl.Client.stop t.client);
        r)
  in
  (* Audit what the directory already holds before the first batch (a
     restarted daemon may be killed again before the primary sends
     anything new). *)
  Mutex.protect t.mu (fun () ->
      match audit_locked t with
      | `Continue -> ()
      | `Stop -> Repl.Client.stop t.client);
  Repl.Client.run t.client ~with_write;
  verdict t

let close t = Repl.Client.close t.client
