(* Readers-writer lock guarding the in-process Database.

   The engine's data structures (B-trees, hash tables, streaming Merkle
   accumulators) are not thread-safe, so the server runs read-only
   requests under a shared lock and everything that mutates — commits,
   DDL, digest generation (it closes the open block) — under an
   exclusive one. A session that opens an explicit transaction holds the
   exclusive lock from BEGIN to COMMIT/ROLLBACK, which is what makes it
   legal for the transaction's eager in-place mutations to span several
   requests; that is the "single writer" of the design.

   Unlike [Mutex], acquire and release may happen in different requests
   of the same session (they stay on that session's thread, but nothing
   here depends on it): the state is plain counters guarded by a private
   mutex. Writers are not prioritised; at this fan-in (tens of sessions)
   starvation is not a practical concern. *)

type t = {
  m : Mutex.t;
  c : Condition.t;
  mutable readers : int;
  mutable writer : bool;
}

let create () =
  { m = Mutex.create (); c = Condition.create (); readers = 0; writer = false }

let lock_read t =
  Mutex.lock t.m;
  while t.writer do
    Condition.wait t.c t.m
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.m

let unlock_read t =
  Mutex.lock t.m;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.broadcast t.c;
  Mutex.unlock t.m

let lock_write t =
  Mutex.lock t.m;
  while t.writer || t.readers > 0 do
    Condition.wait t.c t.m
  done;
  t.writer <- true;
  Mutex.unlock t.m

let unlock_write t =
  Mutex.lock t.m;
  t.writer <- false;
  Condition.broadcast t.c;
  Mutex.unlock t.m

let read t f =
  lock_read t;
  Fun.protect ~finally:(fun () -> unlock_read t) f

let write t f =
  lock_write t;
  Fun.protect ~finally:(fun () -> unlock_write t) f
