(* Readers-writer lock guarding *writer staging* on the in-process
   Database.

   Since the copy-on-write snapshot refactor this lock is no longer on
   the read path: read-shaped requests run against an immutable
   published snapshot (see Dispatch) and never touch it. What remains
   under the lock is everything that mutates the live engine — commit
   staging, DDL, checkpoints, digest generation (it closes the open
   block), the replica's batch apply — plus two deliberate stragglers on
   the read side: a replica's reads before the first batch has been
   applied (nothing published yet), and nothing else. A session that
   opens an explicit transaction holds the exclusive lock from BEGIN to
   COMMIT/ROLLBACK, which is what makes it legal for the transaction's
   eager in-place mutations to span several requests; that is the
   "single writer" of the design, and it keeps today's exclusive-writer
   semantics unchanged.

   Unlike [Mutex], acquire and release may happen in different requests
   of the same session (they stay on that session's thread, but nothing
   here depends on it): the state is plain counters guarded by a private
   mutex. Waiting writers are preferred over new readers — an arriving
   reader blocks while a writer is queued — so a writer behind a stream
   of overlapping readers is admitted as soon as the readers already in
   flight drain, instead of starving. With readers gone from the hot
   path this preference now only matters on the replica's pre-sync
   fallback; the property (and its tests) are kept because the fallback
   still relies on writer progress. *)

(* Readers and writers sleep on separate condition variables so a
   release wakes only threads that can actually make progress: handing
   the lock to the next writer signals exactly one thread instead of
   stampeding every waiter through the runtime lock — with N waiting
   writer sessions a shared broadcast costs O(N) wakeups per release,
   O(N^2) per convoy, and measurably collapses server throughput as
   connections grow. *)
type t = {
  m : Mutex.t;
  rc : Condition.t;  (* readers wait here; broadcast, they all admit *)
  wc : Condition.t;  (* writers wait here; signalled one at a time *)
  mutable readers : int;
  mutable writer : bool;
  mutable waiting_writers : int;
}

let create () =
  {
    m = Mutex.create ();
    rc = Condition.create ();
    wc = Condition.create ();
    readers = 0;
    writer = false;
    waiting_writers = 0;
  }

let lock_read t =
  Mutex.lock t.m;
  while t.writer || t.waiting_writers > 0 do
    Condition.wait t.rc t.m
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.m

let unlock_read t =
  Mutex.lock t.m;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.broadcast t.wc;
  Mutex.unlock t.m

let lock_write t =
  Mutex.lock t.m;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.wc t.m
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  Mutex.unlock t.m

let unlock_write t =
  Mutex.lock t.m;
  t.writer <- false;
  if t.waiting_writers > 0 then Condition.broadcast t.wc
  else Condition.broadcast t.rc;
  Mutex.unlock t.m

let read t f =
  lock_read t;
  Fun.protect ~finally:(fun () -> unlock_read t) f

let write t f =
  lock_write t;
  Fun.protect ~finally:(fun () -> unlock_write t) f
