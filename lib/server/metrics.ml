(* Server-side request counters and latency accumulators.

   One entry per request kind: count, errors, total/max latency, and a
   power-of-two-microsecond histogram from which approximate percentiles
   are read (each bucket's upper bound is its reported value, so a p99 of
   "512" means at least 99% of requests finished within 512 us). The
   whole structure is guarded by one mutex; recording is a handful of
   integer updates, far off the request hot path's scale.

   [lines] renders one metric per line in a prometheus-like plain-text
   shape; the server dumps it on shutdown and on SIGUSR1, and serves it
   to clients via the "stats" request so `bench serve` numbers can be
   cross-checked from the server side.

   Besides per-request kinds, dispatch records two lock-observability
   histograms here: [lock.read_wait_us] (cost of acquiring read access —
   the atomic snapshot fetch on the fast path, the shared lock on the
   replica's pre-sync fallback) and [lock.write_wait_us] (writer-lock
   wait, writer-vs-writer contention only now that reads are lock-free).
   The [sqlledger_snapshot_age_batches] gauge — how many durable batches
   the served snapshot is missing, expected 0, -1 before anything is
   published — arrives through a provider registered by Dispatch. *)

let buckets = 32 (* 1us .. ~2100s in powers of two *)

type entry = {
  mutable count : int;
  mutable errors : int;
  mutable total_us : float;
  mutable max_us : float;
  histogram : int array;
}

type t = {
  m : Mutex.t;
  table : (string, entry) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
      (* robustness event counts: server.shed, server.deadline_exceeded,
         client retry totals — anything that is a count, not a latency *)
  high_waters : (string, int ref) Hashtbl.t;
      (* monotone maxima: commit.queue_depth and friends *)
  started : float;
  mutable conns_opened : int;
  mutable conns_active : int;
  mutable conns_rejected : int;
  mutable providers : (unit -> string list) list;
      (* extra line sources (replication lag, ...), registration order *)
}

let create () =
  {
    m = Mutex.create ();
    table = Hashtbl.create 16;
    counters = Hashtbl.create 8;
    high_waters = Hashtbl.create 8;
    started = Unix.gettimeofday ();
    conns_opened = 0;
    conns_active = 0;
    conns_rejected = 0;
    providers = [];
  }

(* Subsystems with their own state (the replication manager, the replica
   client) contribute lines to every [lines]/[dump] through a provider
   instead of shoehorning their gauges into the histogram table. *)
let register_lines t f =
  Mutex.lock t.m;
  t.providers <- t.providers @ [ f ];
  Mutex.unlock t.m

let entry_of t kind =
  match Hashtbl.find_opt t.table kind with
  | Some e -> e
  | None ->
      let e =
        {
          count = 0;
          errors = 0;
          total_us = 0.0;
          max_us = 0.0;
          histogram = Array.make buckets 0;
        }
      in
      Hashtbl.add t.table kind e;
      e

let bucket_of_us us =
  let rec go i bound =
    if i >= buckets - 1 || us <= bound then i else go (i + 1) (bound *. 2.0)
  in
  go 0 1.0

let record t ~kind ~error ~us =
  Mutex.lock t.m;
  let e = entry_of t kind in
  e.count <- e.count + 1;
  if error then e.errors <- e.errors + 1;
  e.total_us <- e.total_us +. us;
  if us > e.max_us then e.max_us <- us;
  let b = bucket_of_us us in
  e.histogram.(b) <- e.histogram.(b) + 1;
  Mutex.unlock t.m

let cell table name =
  match Hashtbl.find_opt table name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add table name r;
      r

let bump ?(n = 1) t name =
  Mutex.lock t.m;
  let r = cell t.counters name in
  r := !r + n;
  Mutex.unlock t.m

let counter t name =
  Mutex.lock t.m;
  let v = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0 in
  Mutex.unlock t.m;
  v

(* Record [v] as a candidate maximum for gauge [name]. *)
let high_water t name v =
  Mutex.lock t.m;
  let r = cell t.high_waters name in
  if v > !r then r := v;
  Mutex.unlock t.m

let connection_opened t =
  Mutex.lock t.m;
  t.conns_opened <- t.conns_opened + 1;
  t.conns_active <- t.conns_active + 1;
  Mutex.unlock t.m

let connection_closed t =
  Mutex.lock t.m;
  t.conns_active <- t.conns_active - 1;
  Mutex.unlock t.m

let connection_rejected t =
  Mutex.lock t.m;
  t.conns_rejected <- t.conns_rejected + 1;
  Mutex.unlock t.m

(* Smallest histogram upper bound covering fraction [q] of the samples. *)
let percentile e q =
  if e.count = 0 then 0.0
  else begin
    let target =
      int_of_float (ceil (q *. float_of_int e.count))
      |> max 1 |> min e.count
    in
    let rec go i seen bound =
      if i >= buckets then bound
      else
        let seen = seen + e.histogram.(i) in
        if seen >= target then bound
        else go (i + 1) seen (bound *. 2.0)
    in
    go 0 0 1.0
  end

let lines t =
  Mutex.lock t.m;
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  add "sqlledger_uptime_seconds %.1f" (Unix.gettimeofday () -. t.started);
  add "sqlledger_connections_opened_total %d" t.conns_opened;
  add "sqlledger_connections_active %d" t.conns_active;
  add "sqlledger_connections_rejected_total %d" t.conns_rejected;
  let sorted table =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, v) -> add "sqlledger_counter{name=%S} %d" name v)
    (sorted t.counters);
  List.iter
    (fun (name, v) -> add "sqlledger_high_water{name=%S} %d" name v)
    (sorted t.high_waters);
  let kinds =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.table []
    |> List.sort String.compare
  in
  List.iter
    (fun kind ->
      let e = Hashtbl.find t.table kind in
      add "sqlledger_requests_total{kind=%S} %d" kind e.count;
      add "sqlledger_request_errors_total{kind=%S} %d" kind e.errors;
      add "sqlledger_request_latency_us{kind=%S,stat=\"avg\"} %.1f" kind
        (if e.count = 0 then 0.0 else e.total_us /. float_of_int e.count);
      add "sqlledger_request_latency_us{kind=%S,stat=\"p50\"} %.0f" kind
        (percentile e 0.50);
      add "sqlledger_request_latency_us{kind=%S,stat=\"p95\"} %.0f" kind
        (percentile e 0.95);
      add "sqlledger_request_latency_us{kind=%S,stat=\"p99\"} %.0f" kind
        (percentile e 0.99);
      add "sqlledger_request_latency_us{kind=%S,stat=\"max\"} %.1f" kind
        e.max_us)
    kinds;
  let providers = t.providers in
  Mutex.unlock t.m;
  (* Providers run outside the mutex: they take their own locks, and a
     provider that also records here must not deadlock. *)
  List.rev !out
  @ List.concat_map (fun f -> try f () with _ -> []) providers

let dump t oc =
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (lines t);
  flush oc
