(* Copy-on-write B+tree. Interior nodes hold separator keys and children;
   all bindings live in the leaves. Separator keys.(i) is the minimum key of
   the subtree kids.(i + 1), so a lookup descends into the rightmost child
   whose separator is <= the probe.

   Nodes are immutable: insert and remove rebuild the root-to-leaf path they
   touch (path copying) and share every untouched subtree with the previous
   version of the tree. A mutation therefore allocates O(order * depth) and
   publishes itself as a single write of [t.root]. The payoff is [snapshot]:
   capturing the root pointer freezes the tree's contents forever at O(1)
   cost, because no later mutation can reach the captured nodes. With the
   default order of 32 the extra copying is the same array-copy work the
   previous in-place version already did on most paths; rebalancing code
   stays simple. *)

type ('k, 'v) node =
  | Leaf of { keys : 'k array; vals : 'v array }
  | Node of { keys : 'k array; kids : ('k, 'v) node array }

type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  order : int;
  mutable root : ('k, 'v) node;
  mutable size : int;
}

let create ?(order = 32) ~cmp () =
  if order < 4 then invalid_arg "Btree.create: order must be >= 4";
  { cmp; order; root = Leaf { keys = [||]; vals = [||] }; size = 0 }

let length t = t.size

(* O(1) frozen view: nodes are immutable, so sharing the current root
   pinpoints this version forever. The result is an ordinary [t] — every
   read operation works on it unchanged — but mutating it would fork
   history, so callers treat it as read-only. *)
let snapshot t = { cmp = t.cmp; order = t.order; root = t.root; size = t.size }

(* Index of the child to descend into: number of separators <= key. *)
let child_index cmp keys key =
  let n = Array.length keys in
  let rec go lo hi =
    (* Invariant: separators < lo are <= key; separators >= hi are > key. *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cmp keys.(mid) key <= 0 then go (mid + 1) hi else go lo mid
  in
  go 0 n

(* Position of [key] in a leaf's key array: [Found i] or [Insert_at i]. *)
type position = Found of int | Insert_at of int

let leaf_position cmp keys key =
  let n = Array.length keys in
  let rec go lo hi =
    if lo >= hi then Insert_at lo
    else
      let mid = (lo + hi) / 2 in
      let c = cmp keys.(mid) key in
      if c = 0 then Found mid
      else if c < 0 then go (mid + 1) hi
      else go lo mid
  in
  go 0 n

let array_insert arr i x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  Array.blit arr 0 out 0 i;
  Array.blit arr i out (i + 1) (n - i);
  out

let array_remove arr i =
  let n = Array.length arr in
  let out = Array.sub arr 0 (n - 1) in
  Array.blit arr (i + 1) out i (n - 1 - i);
  out

let array_set arr i x =
  let out = Array.copy arr in
  out.(i) <- x;
  out

let find t key =
  let rec go = function
    | Leaf { keys; vals } -> (
        match leaf_position t.cmp keys key with
        | Found i -> Some vals.(i)
        | Insert_at _ -> None)
    | Node { keys; kids } -> go kids.(child_index t.cmp keys key)
  in
  go t.root

let mem t key = find t key <> None

let min_key = function
  | Leaf { keys; _ } -> if Array.length keys = 0 then None else Some keys.(0)
  | Node _ -> None (* only called on leaves via leftmost descent *)

let rec leftmost = function
  | Leaf _ as l -> l
  | Node { kids; _ } -> leftmost kids.(0)

let subtree_min node =
  match min_key (leftmost node) with
  | Some k -> k
  | None -> failwith "Btree: empty subtree"

(* insert: [go] returns the rebuilt node plus [Some (sep, right)] if it
   split, where [sep] is the minimum key of [right]. Shared subtrees are
   reused by pointer; only the descent path is reallocated. *)
let insert t key value =
  let max_leaf = t.order - 1 in
  let replaced = ref None in
  let rec go node =
    match node with
    | Leaf { keys; vals } -> (
        match leaf_position t.cmp keys key with
        | Found i ->
            replaced := Some vals.(i);
            (Leaf { keys; vals = array_set vals i value }, None)
        | Insert_at i ->
            let keys = array_insert keys i key in
            let vals = array_insert vals i value in
            if Array.length keys > max_leaf then begin
              let n = Array.length keys in
              let mid = n / 2 in
              let rkeys = Array.sub keys mid (n - mid) in
              let rvals = Array.sub vals mid (n - mid) in
              ( Leaf
                  { keys = Array.sub keys 0 mid; vals = Array.sub vals 0 mid },
                Some (rkeys.(0), Leaf { keys = rkeys; vals = rvals }) )
            end
            else (Leaf { keys; vals }, None))
    | Node { keys; kids } -> (
        let i = child_index t.cmp keys key in
        let child, split = go kids.(i) in
        match split with
        | None -> (Node { keys; kids = array_set kids i child }, None)
        | Some (sep, right) ->
            let keys = array_insert keys i sep in
            let kids = array_insert kids (i + 1) right in
            kids.(i) <- child;
            (* fresh array from array_insert: safe to fix in place *)
            if Array.length kids > t.order then begin
              (* Split interior node: middle separator moves up. *)
              let nk = Array.length keys in
              let mid = nk / 2 in
              let up = keys.(mid) in
              let rkeys = Array.sub keys (mid + 1) (nk - mid - 1) in
              let rkids =
                Array.sub kids (mid + 1) (Array.length kids - mid - 1)
              in
              ( Node
                  {
                    keys = Array.sub keys 0 mid;
                    kids = Array.sub kids 0 (mid + 1);
                  },
                Some (up, Node { keys = rkeys; kids = rkids }) )
            end
            else (Node { keys; kids }, None))
  in
  let root, split = go t.root in
  t.root <-
    (match split with
    | None -> root
    | Some (sep, right) -> Node { keys = [| sep |]; kids = [| root; right |] });
  if !replaced = None then t.size <- t.size + 1;
  !replaced

(* Deletion: [go] returns the rebuilt node; the parent checks whether the
   rebuilt child underflowed and, if so, repairs it against a COW-copied
   sibling. Minimum fill: leaves hold >= (order-1)/2 entries, interior
   nodes >= order/2 children; the root is exempt. *)
let remove t key =
  let min_leaf = (t.order - 1) / 2 in
  let min_kids = t.order / 2 in
  let removed = ref None in
  let underflow = function
    | Leaf { keys; _ } -> Array.length keys < min_leaf
    | Node { kids; _ } -> Array.length kids < min_kids
  in
  let can_lend = function
    | Leaf { keys; _ } -> Array.length keys > min_leaf
    | Node { kids; _ } -> Array.length kids > min_kids
  in
  (* Rebuild the parent around the underflowed child at [i]: borrow from a
     sibling that can lend, else merge with one. [pkeys]/[pkids] are fresh
     arrays owned by this call, so in-place fixes here never reach a
     snapshot; every node they point at is rebuilt before being stored. *)
  let fix_child pkeys pkids i child =
    let keys = ref pkeys and kids = ref pkids in
    !kids.(i) <- child;
    if i > 0 && can_lend !kids.(i - 1) then begin
      match (!kids.(i - 1), !kids.(i)) with
      | Leaf l, Leaf r ->
          let n = Array.length l.keys in
          let k = l.keys.(n - 1) and v = l.vals.(n - 1) in
          !kids.(i - 1) <-
            Leaf
              {
                keys = array_remove l.keys (n - 1);
                vals = array_remove l.vals (n - 1);
              };
          !kids.(i) <-
            Leaf { keys = array_insert r.keys 0 k; vals = array_insert r.vals 0 v }
      | Node l, Node r ->
          let nk = Array.length l.keys in
          let moved = l.kids.(Array.length l.kids - 1) in
          let sep = !keys.(i - 1) in
          !kids.(i - 1) <-
            Node
              {
                keys = array_remove l.keys (nk - 1);
                kids = array_remove l.kids (Array.length l.kids - 1);
              };
          !kids.(i) <-
            Node { keys = array_insert r.keys 0 sep; kids = array_insert r.kids 0 moved }
      | _ -> assert false
    end
    else if i < Array.length !kids - 1 && can_lend !kids.(i + 1) then begin
      match (!kids.(i), !kids.(i + 1)) with
      | Leaf l, Leaf r ->
          !kids.(i) <-
            Leaf
              {
                keys = array_insert l.keys (Array.length l.keys) r.keys.(0);
                vals = array_insert l.vals (Array.length l.vals) r.vals.(0);
              };
          !kids.(i + 1) <-
            Leaf { keys = array_remove r.keys 0; vals = array_remove r.vals 0 }
      | Node l, Node r ->
          let moved = r.kids.(0) in
          let sep = !keys.(i) in
          !kids.(i) <-
            Node
              {
                keys = array_insert l.keys (Array.length l.keys) sep;
                kids = array_insert l.kids (Array.length l.kids) moved;
              };
          !kids.(i + 1) <-
            Node { keys = array_remove r.keys 0; kids = array_remove r.kids 0 }
      | _ -> assert false
    end
    else begin
      (* Merge kids.(li + 1) into kids.(li). *)
      let li = if i > 0 then i - 1 else i in
      let sep = !keys.(li) in
      let merged =
        match (!kids.(li), !kids.(li + 1)) with
        | Leaf l, Leaf r ->
            Leaf
              {
                keys = Array.append l.keys r.keys;
                vals = Array.append l.vals r.vals;
              }
        | Node l, Node r ->
            Node
              {
                keys = Array.concat [ l.keys; [| sep |]; r.keys ];
                kids = Array.append l.kids r.kids;
              }
        | _ -> assert false
      in
      kids := array_remove !kids (li + 1);
      !kids.(li) <- merged;
      keys := array_remove !keys li
    end;
    let keys = !keys and kids = !kids in
    (* Refresh separators that might be stale after restructuring. *)
    for j = 0 to Array.length keys - 1 do
      keys.(j) <- subtree_min kids.(j + 1)
    done;
    Node { keys; kids }
  in
  let rec go node =
    match node with
    | Leaf { keys; vals } -> (
        match leaf_position t.cmp keys key with
        | Insert_at _ -> node
        | Found i ->
            removed := Some vals.(i);
            Leaf { keys = array_remove keys i; vals = array_remove vals i })
    | Node { keys; kids } ->
        let i = child_index t.cmp keys key in
        let child = go kids.(i) in
        if !removed = None then node
        else if underflow child then fix_child (Array.copy keys) (Array.copy kids) i child
        else begin
          (* The separator may have pointed at the removed key. *)
          let keys =
            if i > 0 then array_set keys (i - 1) (subtree_min child) else keys
          in
          Node { keys; kids = array_set kids i child }
        end
  in
  let root = go t.root in
  (match !removed with
  | None -> ()
  | Some _ ->
      t.size <- t.size - 1;
      (* Collapse a root that lost all separators. *)
      t.root <-
        (match root with
        | Node { kids; _ } when Array.length kids = 1 -> kids.(0)
        | _ -> root));
  !removed

let iter f t =
  let rec go = function
    | Leaf { keys; vals } ->
        Array.iteri (fun i k -> f k vals.(i)) keys
    | Node { kids; _ } -> Array.iter go kids
  in
  go t.root

let fold f acc t =
  let acc = ref acc in
  iter (fun k v -> acc := f !acc k v) t;
  !acc

let to_list t = List.rev (fold (fun acc k v -> (k, v) :: acc) [] t)

let range t ?lo ?hi () =
  let keep k =
    (match lo with Some l -> t.cmp l k <= 0 | None -> true)
    && match hi with Some h -> t.cmp k h <= 0 | None -> true
  in
  let out = ref [] in
  let rec go = function
    | Leaf { keys; vals } ->
        Array.iteri (fun i k -> if keep k then out := (k, vals.(i)) :: !out) keys
    | Node { keys; kids } ->
        (* Prune subtrees entirely outside the range. *)
        let n = Array.length kids in
        for i = 0 to n - 1 do
          let sub_lo = if i = 0 then None else Some keys.(i - 1) in
          let sub_hi = if i = n - 1 then None else Some keys.(i) in
          let overlaps =
            (match (hi, sub_lo) with
            | Some h, Some sl -> t.cmp sl h <= 0
            | _ -> true)
            &&
            match (lo, sub_hi) with
            | Some l, Some sh -> t.cmp l sh <= 0
            | _ -> true
          in
          if overlaps then go kids.(i)
        done
  in
  go t.root;
  List.rev !out

let min_binding t =
  match leftmost t.root with
  | Leaf { keys; vals } ->
      if Array.length keys = 0 then None else Some (keys.(0), vals.(0))
  | Node _ -> assert false

let max_binding t =
  let rec rightmost = function
    | Leaf { keys; vals } ->
        let n = Array.length keys in
        if n = 0 then None else Some (keys.(n - 1), vals.(n - 1))
    | Node { kids; _ } -> rightmost kids.(Array.length kids - 1)
  in
  rightmost t.root

let clear t =
  t.root <- Leaf { keys = [||]; vals = [||] };
  t.size <- 0

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let min_leaf = (t.order - 1) / 2 in
  let min_kids = t.order / 2 in
  let count = ref 0 in
  let rec go ~is_root node =
    match node with
    | Leaf { keys; vals } ->
        if Array.length keys <> Array.length vals then
          fail "leaf keys/vals length mismatch";
        if (not is_root) && Array.length keys < min_leaf then
          fail "leaf underfull: %d < %d" (Array.length keys) min_leaf;
        if Array.length keys > t.order - 1 then fail "leaf overfull";
        for i = 1 to Array.length keys - 1 do
          if t.cmp keys.(i - 1) keys.(i) >= 0 then fail "leaf keys unsorted"
        done;
        count := !count + Array.length keys
    | Node { keys; kids } ->
        if Array.length kids <> Array.length keys + 1 then
          fail "interior arity mismatch";
        if (not is_root) && Array.length kids < min_kids then
          fail "interior underfull";
        if Array.length kids > t.order then fail "interior overfull";
        for i = 1 to Array.length keys - 1 do
          if t.cmp keys.(i - 1) keys.(i) >= 0 then
            fail "interior keys unsorted"
        done;
        (* A separator need not equal the right subtree's minimum after
           deletions; the search invariant is max(left) < sep <= min(right). *)
        let rec sub_min = function
          | Leaf { keys; _ } -> keys.(0)
          | Node { kids; _ } -> sub_min kids.(0)
        in
        let rec sub_max = function
          | Leaf { keys; _ } -> keys.(Array.length keys - 1)
          | Node { kids; _ } -> sub_max kids.(Array.length kids - 1)
        in
        Array.iteri
          (fun i sep ->
            if t.cmp (sub_max kids.(i)) sep >= 0 then
              fail "separator <= max of left subtree";
            if t.cmp sep (sub_min kids.(i + 1)) > 0 then
              fail "separator > min of right subtree")
          keys;
        Array.iter (go ~is_root:false) kids
  in
  go ~is_root:true t.root;
  if !count <> t.size then fail "size mismatch: %d <> %d" !count t.size
