(** In-memory copy-on-write B+tree.

    Backs clustered indexes (primary key → row) and non-clustered indexes
    (key → primary key) of the storage engine. Ordered iteration drives
    clustered-order scans, which verification query 5 (paper §3.4.2) relies
    on when comparing base tables against their non-clustered indexes.

    Nodes are immutable: [insert] and [remove] path-copy the root-to-leaf
    path they touch and share untouched subtrees, so [snapshot] freezes the
    tree's contents at O(1) cost. Mutations are not thread-safe against each
    other (callers serialize writers), but a snapshot may be read freely
    while the source tree keeps mutating. *)

type ('k, 'v) t

val create : ?order:int -> cmp:('k -> 'k -> int) -> unit -> ('k, 'v) t
(** [order] is the maximum number of children of an interior node (default
    32, minimum 4). *)

val length : ('k, 'v) t -> int

val snapshot : ('k, 'v) t -> ('k, 'v) t
(** O(1) frozen view: shares the current root; later mutations of the
    source never reach it. Treat the result as read-only — mutating it
    forks history instead of failing. *)

val find : ('k, 'v) t -> 'k -> 'v option

val mem : ('k, 'v) t -> 'k -> bool

val insert : ('k, 'v) t -> 'k -> 'v -> 'v option
(** Insert or replace; returns the previous binding if any. *)

val remove : ('k, 'v) t -> 'k -> 'v option
(** Remove; returns the removed binding if any. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** In ascending key order. *)

val fold : ('acc -> 'k -> 'v -> 'acc) -> 'acc -> ('k, 'v) t -> 'acc

val to_list : ('k, 'v) t -> ('k * 'v) list

val range : ('k, 'v) t -> ?lo:'k -> ?hi:'k -> unit -> ('k * 'v) list
(** Bindings with [lo <= k <= hi] (either bound optional), ascending. *)

val min_binding : ('k, 'v) t -> ('k * 'v) option
val max_binding : ('k, 'v) t -> ('k * 'v) option

val clear : ('k, 'v) t -> unit

val check_invariants : ('k, 'v) t -> unit
(** Raises [Failure] if a structural invariant is violated (node fill
    factors, key ordering, separator correctness). Test hook. *)
