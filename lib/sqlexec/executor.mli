(** SQL query evaluation.

    Evaluates a parsed {!Ast.select} against a catalog of named relations.
    The verification process of paper §3.4.2 drives all five invariant
    checks through this engine, exactly as SQL Ledger drives them through
    SQL Server's query processor. *)

exception Exec_error of string

type catalog = {
  lookup_table : string -> (string list * Relation.Row.t list) option;
      (** Column names and rows for a table name (case handling is the
          provider's business; the engine passes the name through). *)
  lookup_table_as_of :
    string -> as_of:float -> (string list * Relation.Row.t list) option;
      (** The same relation as it stood at commit timestamp [as_of]
          ([FOR SYSTEM_TIME AS OF]). [None] = the name has no temporal
          view; providers without history return [None] for every name. *)
  functions : (string * (Relation.Value.t list -> Relation.Value.t)) list;
      (** Scalar functions by uppercase name; consulted after
          {!Builtins.default}. *)
}

val catalog_of_tables :
  (string * (string list * Relation.Row.t list)) list -> catalog
(** Simple in-memory catalog (case-insensitive table names, default
    builtins). *)

val execute : catalog -> Ast.select -> Rel.t
(** Raises {!Exec_error} on semantic errors (unknown table/column/function,
    type errors, division by zero, aggregate misuse). *)

val query : catalog -> string -> Rel.t
(** Parse then execute. Also raises {!Parser.Parse_error} /
    {!Lexer.Lex_error}. *)
