(* Abstract syntax of the SQL subset.

   The subset is exactly what the ledger verification queries of paper
   §3.4.2 need, plus enough general machinery for examples and tooling:
   SELECT with joins (inner / left / right / full outer), WHERE, GROUP BY /
   HAVING with ordered aggregates (MERKLETREEAGG ... ORDER BY), the LAG
   window function, OPENJSON table sources, subqueries, ORDER BY and
   LIMIT. *)

type binop =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Concat

type order_dir = Asc | Desc

type join_kind = Inner | Left | Right | Full

type expr =
  | Lit of Relation.Value.t
  | Col of { table : string option; column : string }
  | Binop of binop * expr * expr
  | Not of expr
  | Neg of expr
  | Is_null of { subject : expr; positive : bool }
  | Func of string * expr list  (** scalar function, resolved at run time *)
  | Agg of agg
  | Window of window
  | Case of { branches : (expr * expr) list; else_ : expr option }
  | In_list of expr * expr list
  | Like of { subject : expr; pattern : expr; negated : bool }
      (** SQL LIKE with [%] and [_] wildcards *)
  | Between of { subject : expr; lo : expr; hi : expr; negated : bool }
  | Exists of select
      (** uncorrelated EXISTS (SELECT ...) *)
  | Scalar_subquery of select
      (** uncorrelated (SELECT ...) producing one value; NULL on zero rows,
          error on more than one row or column *)

and agg =
  | Count_star
  | Count of expr
  | Sum of expr
  | Min_agg of expr
  | Max_agg of expr
  | Avg of expr
  | Merkle_agg of { input : expr; order_by : (expr * order_dir) list }
      (** The paper's MERKLETREEAGG: Merkle root over the group's input
          hashes, taken in the specified order. *)

and window =
  | Lag of { input : expr; order_by : (expr * order_dir) list }
      (** LAG(input) OVER (ORDER BY ...): value of [input] on the previous
          row; NULL on the first row. *)

and select = {
  distinct : bool;
  projections : projection list;
  from : from option;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : int option;
}

and projection = Star | Expr of expr * string option

and from =
  | Table of {
      name : string;
      alias : string option;
      as_of : expr option;
          (** temporal clause: [FOR SYSTEM_TIME AS OF <ts>] resolves a
              ledger table (or its [_ledger] provenance view) to its
              state at that commit timestamp. [None] = current state. *)
    }
  | Subquery of { query : select; alias : string }
  | Openjson of { arg : expr; alias : string }
  | Join of { left : from; kind : join_kind; right : from; on : expr }

(** Top-level statements. SELECT is executed by {!Executor}; the DML forms
    are interpreted by the database layer (lib/core's Dml module), which
    routes them through ledgered transactions. *)
type statement =
  | Select of select
  | Insert of {
      table : string;
      columns : string list option;  (** None = positional, all columns *)
      rows : expr list list;         (** constant expressions *)
    }
  | Update of {
      table : string;
      assignments : (string * expr) list;
      where : expr option;
    }
  | Delete of { table : string; where : expr option }

(* Helpers for building queries programmatically (the verifier does this to
   avoid round-tripping through text). *)

let col ?table column = Col { table; column }
let int_lit i = Lit (Relation.Value.Int i)
let str_lit s = Lit (Relation.Value.String s)
let ( ==. ) a b = Binop (Eq, a, b)
let ( &&. ) a b = Binop (And, a, b)
let ( ||. ) a b = Binop (Or, a, b)

let select ?(distinct = false) ?(from : from option) ?where ?(group_by = [])
    ?having ?(order_by = []) ?limit projections =
  { distinct; projections; from; where; group_by; having; order_by; limit }
