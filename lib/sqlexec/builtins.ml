open Relation
module Sha256 = Ledger_crypto.Sha256
module Hex = Ledger_crypto.Hex

exception Builtin_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Builtin_error s)) fmt

(* Verification recomputes LEDGERHASH for every transaction entry and block
   (§3.4.2), so the context is a per-domain scratch — reset and reused, no
   per-call allocation beyond the hex result. Domain-local because the
   verifier runs these from parallel worker domains. *)
let ledgerhash_ctx : Sha256.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Sha256.init ())

let ledgerhash args =
  let t = Domain.DLS.get ledgerhash_ctx in
  Sha256.reset t;
  Sha256.feed_string t "ledgerhash:";
  List.iter (fun v -> Value.tagged_feed t v) args;
  let out = Bytes.create 32 in
  Sha256.finish_into t out ~off:0;
  Value.String (Hex.encode (Bytes.unsafe_to_string out))

let merkle_root_of_hex_leaves leaves =
  let raw =
    List.map
      (fun hex ->
        if not (Hex.is_hex hex) then
          err "MERKLETREEAGG: input %S is not a hex digest" hex;
        Hex.decode hex)
      leaves
  in
  (* Auto-parallel: large aggregations (the per-block transaction root over
     up to 100K entries) split across domains; small groups and calls from
     verifier worker domains stay sequential. *)
  Hex.encode (Merkle.Parallel.root raw)

let as_string name = function
  | Value.String s -> s
  | Value.Null -> err "%s: NULL argument" name
  | v -> Value.to_string v

let as_int name = function
  | Value.Int i -> i
  | v -> err "%s: expected integer, got %s" name (Value.to_string v)

let null_through f args =
  if List.exists Value.is_null args then Value.Null else f args

let default =
  [
    ("LEDGERHASH", ledgerhash);
    ( "LEN",
      null_through (function
        | [ v ] -> Value.Int (String.length (as_string "LEN" v))
        | _ -> err "LEN expects one argument") );
    ( "UPPER",
      null_through (function
        | [ v ] -> Value.String (String.uppercase_ascii (as_string "UPPER" v))
        | _ -> err "UPPER expects one argument") );
    ( "LOWER",
      null_through (function
        | [ v ] -> Value.String (String.lowercase_ascii (as_string "LOWER" v))
        | _ -> err "LOWER expects one argument") );
    ( "SUBSTRING",
      null_through (function
        | [ s; start; len ] ->
            let s = as_string "SUBSTRING" s in
            let start = max 1 (as_int "SUBSTRING" start) in
            let len = as_int "SUBSTRING" len in
            let avail = String.length s - (start - 1) in
            if avail <= 0 || len <= 0 then Value.String ""
            else Value.String (String.sub s (start - 1) (min len avail))
        | _ -> err "SUBSTRING expects (string, start, length)") );
    ( "ABS",
      null_through (function
        | [ Value.Int i ] -> Value.Int (abs i)
        | [ Value.Float f ] -> Value.Float (Float.abs f)
        | _ -> err "ABS expects one numeric argument") );
    ( "COALESCE",
      fun args ->
        (match List.find_opt (fun v -> not (Value.is_null v)) args with
        | Some v -> v
        | None -> Value.Null) );
    ( "NULLIF",
      function
      | [ a; b ] -> if Value.equal a b then Value.Null else a
      | _ -> err "NULLIF expects two arguments" );
    ( "CAST_INT",
      null_through (function
        | [ Value.Int i ] -> Value.Int i
        | [ Value.Float f ] -> Value.Int (int_of_float f)
        | [ Value.String s ] -> (
            match int_of_string_opt (String.trim s) with
            | Some i -> Value.Int i
            | None -> err "CAST_INT: %S is not an integer" s)
        | [ Value.Bool b ] -> Value.Int (if b then 1 else 0)
        | _ -> err "CAST_INT expects one argument") );
    ( "JSON_VALUE",
      null_through (function
        | [ doc; key ] -> (
            let doc = as_string "JSON_VALUE" doc in
            let key = as_string "JSON_VALUE" key in
            match Sjson.of_string doc with
            | exception Sjson.Parse_error e -> err "JSON_VALUE: %s" e
            | json -> (
                match Sjson.member key json with
                | Sjson.Null -> Value.Null
                | Sjson.Int i -> Value.Int i
                | Sjson.Float f -> Value.Float f
                | Sjson.Bool b -> Value.Bool b
                | Sjson.String s -> Value.String s
                | other -> Value.String (Sjson.to_string other)))
        | _ -> err "JSON_VALUE expects (document, key)") );
  ]
