open Relation
open Ast

exception Exec_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

type catalog = {
  lookup_table : string -> (string list * Row.t list) option;
  lookup_table_as_of : string -> as_of:float -> (string list * Row.t list) option;
  functions : (string * (Value.t list -> Value.t)) list;
}

let catalog_of_tables tables =
  let tables =
    List.map (fun (n, v) -> (String.lowercase_ascii n, v)) tables
  in
  {
    lookup_table =
      (fun name -> List.assoc_opt (String.lowercase_ascii name) tables);
    lookup_table_as_of = (fun _ ~as_of:_ -> None);
    functions = [];
  }

type ctx = {
  rel : Rel.t;
  row : Row.t;
  group : Row.t list option;
  windows : (window * Value.t) list;
  catalog : catalog;
}

let empty_rel = Rel.make [] []

let null_ctx catalog =
  { rel = empty_rel; row = [||]; group = None; windows = []; catalog }

(* --------------------------------------------------------------- *)
(* Expression evaluation (SQL three-valued logic) *)

let truthy = function Value.Bool b -> b | Value.Null -> false | _ -> true

let numeric_binop op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> (
      match op with
      | Add -> Value.Int (x + y)
      | Sub -> Value.Int (x - y)
      | Mul -> Value.Int (x * y)
      | Div ->
          if y = 0 then err "division by zero" else Value.Int (x / y)
      | Mod ->
          if y = 0 then err "modulo by zero" else Value.Int (x mod y)
      | _ -> assert false)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
      let f = function
        | Value.Int i -> float_of_int i
        | Value.Float f -> f
        | _ -> assert false
      in
      let x = f a and y = f b in
      (match op with
      | Add -> Value.Float (x +. y)
      | Sub -> Value.Float (x -. y)
      | Mul -> Value.Float (x *. y)
      | Div ->
          if y = 0. then err "division by zero" else Value.Float (x /. y)
      | Mod -> err "modulo requires integers"
      | _ -> assert false)
  | _ ->
      err "arithmetic on non-numeric values (%s, %s)" (Value.to_string a)
        (Value.to_string b)

let comparison op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ ->
      let c = Value.compare a b in
      let r =
        match op with
        | Eq -> c = 0
        | Neq -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | _ -> assert false
      in
      Value.Bool r

let logic_and a b =
  match (a, b) with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ -> Value.Bool (truthy a && truthy b)

let logic_or a b =
  match (a, b) with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ -> Value.Bool (truthy a || truthy b)

(* Subquery evaluation needs [execute], defined after the expression
   evaluator; tied through a forward reference. *)
let execute_ref : (catalog -> Ast.select -> Rel.t) ref =
  ref (fun _ _ -> err "executor not initialised")

(* SQL LIKE: '%' matches any sequence, '_' any single character. *)
let like_match ~pattern text =
  let np = String.length pattern and nt = String.length text in
  (* memoized backtracking over (pattern index, text index) *)
  let memo = Hashtbl.create 16 in
  let rec go pi ti =
    match Hashtbl.find_opt memo (pi, ti) with
    | Some r -> r
    | None ->
        let r =
          if pi = np then ti = nt
          else
            match pattern.[pi] with
            | '%' -> go (pi + 1) ti || (ti < nt && go pi (ti + 1))
            | '_' -> ti < nt && go (pi + 1) (ti + 1)
            | c -> ti < nt && text.[ti] = c && go (pi + 1) (ti + 1)
        in
        Hashtbl.add memo (pi, ti) r;
        r
  in
  go 0 0

let rec eval ctx expr =
  match expr with
  | Lit v -> v
  | Col { table; column } -> (
      match Rel.resolve ctx.rel ~table ~column with
      | Ok i ->
          if i < Array.length ctx.row then ctx.row.(i)
          else err "internal: row narrower than relation"
      | Error e -> raise (Exec_error e))
  | Neg e -> (
      match eval ctx e with
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | Value.Null -> Value.Null
      | v -> err "cannot negate %s" (Value.to_string v))
  | Not e -> (
      match eval ctx e with
      | Value.Null -> Value.Null
      | v -> Value.Bool (not (truthy v)))
  | Is_null { subject; positive } ->
      let v = eval ctx subject in
      Value.Bool (if positive then Value.is_null v else not (Value.is_null v))
  | Binop (And, a, b) -> logic_and (eval ctx a) (eval ctx b)
  | Binop (Or, a, b) -> logic_or (eval ctx a) (eval ctx b)
  | Binop (Concat, a, b) -> (
      match (eval ctx a, eval ctx b) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | x, y -> Value.String (Value.to_string x ^ Value.to_string y))
  | Binop (((Eq | Neq | Lt | Le | Gt | Ge) as op), a, b) ->
      comparison op (eval ctx a) (eval ctx b)
  | Binop (((Add | Sub | Mul | Div | Mod) as op), a, b) ->
      numeric_binop op (eval ctx a) (eval ctx b)
  | In_list (subject, items) ->
      let v = eval ctx subject in
      if Value.is_null v then Value.Null
      else
        let vs = List.map (eval ctx) items in
        if List.exists (Value.equal v) vs then Value.Bool true
        else if List.exists Value.is_null vs then Value.Null
        else Value.Bool false
  | Like { subject; pattern; negated } -> (
      match (eval ctx subject, eval ctx pattern) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | s, p ->
          let r = like_match ~pattern:(Value.to_string p) (Value.to_string s) in
          Value.Bool (if negated then not r else r))
  | Between { subject; lo; hi; negated } -> (
      match (eval ctx subject, eval ctx lo, eval ctx hi) with
      | Value.Null, _, _ | _, Value.Null, _ | _, _, Value.Null -> Value.Null
      | v, l, h ->
          let r = Value.compare v l >= 0 && Value.compare v h <= 0 in
          Value.Bool (if negated then not r else r))
  | Case { branches; else_ } -> (
      let rec go = function
        | [] -> ( match else_ with Some e -> eval ctx e | None -> Value.Null)
        | (cond, result) :: rest ->
            if truthy (eval ctx cond) then eval ctx result else go rest
      in
      go branches)
  | Func (name, args) -> (
      let args = List.map (eval ctx) args in
      match
        List.assoc_opt name ctx.catalog.functions
        |> (function
             | Some f -> Some f
             | None -> List.assoc_opt name Builtins.default)
      with
      | Some f -> (
          try f args with Builtins.Builtin_error e -> raise (Exec_error e))
      | None -> err "unknown function %s" name)
  | Agg agg -> (
      match ctx.group with
      | None -> err "aggregate outside GROUP BY context"
      | Some rows -> eval_agg ctx rows agg)
  | Window w -> (
      match List.assoc_opt w ctx.windows with
      | Some v -> v
      | None -> err "window function in unsupported position")
  | Exists q ->
      Value.Bool ((!execute_ref ctx.catalog q).Rel.rows <> [])
  | Scalar_subquery q -> (
      let result = !execute_ref ctx.catalog q in
      if Rel.arity result <> 1 then
        err "scalar subquery must produce exactly one column";
      match result.Rel.rows with
      | [] -> Value.Null
      | [ row ] -> row.(0)
      | _ -> err "scalar subquery produced more than one row")

and eval_agg ctx rows agg =
  let per_row e = List.map (fun row -> eval { ctx with row } e) rows in
  match agg with
  | Count_star -> Value.Int (List.length rows)
  | Count e ->
      Value.Int
        (List.length (List.filter (fun v -> not (Value.is_null v)) (per_row e)))
  | Sum e ->
      let vs = List.filter (fun v -> not (Value.is_null v)) (per_row e) in
      if vs = [] then Value.Null
      else
        List.fold_left (fun acc v -> numeric_binop Add acc v) (List.hd vs)
          (List.tl vs)
  | Avg e -> (
      let vs = List.filter (fun v -> not (Value.is_null v)) (per_row e) in
      if vs = [] then Value.Null
      else
        let sum =
          List.fold_left (fun acc v -> numeric_binop Add acc v)
            (Value.Float 0.) vs
        in
        match sum with
        | Value.Float f -> Value.Float (f /. float_of_int (List.length vs))
        | _ -> assert false)
  | Min_agg e ->
      let vs = List.filter (fun v -> not (Value.is_null v)) (per_row e) in
      (match vs with
      | [] -> Value.Null
      | first :: rest ->
          List.fold_left
            (fun acc v -> if Value.compare v acc < 0 then v else acc)
            first rest)
  | Max_agg e ->
      let vs = List.filter (fun v -> not (Value.is_null v)) (per_row e) in
      (match vs with
      | [] -> Value.Null
      | first :: rest ->
          List.fold_left
            (fun acc v -> if Value.compare v acc > 0 then v else acc)
            first rest)
  | Merkle_agg { input; order_by } ->
      let ordered = sort_rows ctx rows order_by in
      let leaves =
        List.map
          (fun row ->
            match eval { ctx with row } input with
            | Value.String s -> s
            | v ->
                err "MERKLETREEAGG expects hex strings, got %s"
                  (Value.to_string v))
          ordered
      in
      (try Value.String (Builtins.merkle_root_of_hex_leaves leaves)
       with Builtins.Builtin_error e -> raise (Exec_error e))

and sort_rows ctx rows order_by =
  if order_by = [] then rows
  else begin
    let keyed =
      List.map
        (fun row ->
          (List.map (fun (e, _) -> eval { ctx with row } e) order_by, row))
        rows
    in
    let compare_keys (ka, _) (kb, _) =
      let rec go ks dirs =
        match (ks, dirs) with
        | [], _ | _, [] -> 0
        | (a, b) :: rest, (_, dir) :: dir_rest ->
            let c = Value.compare a b in
            let c = match dir with Asc -> c | Desc -> -c in
            if c <> 0 then c else go rest dir_rest
      in
      go (List.combine ka kb) order_by
    in
    List.stable_sort compare_keys keyed |> List.map snd
  end

(* --------------------------------------------------------------- *)
(* Window functions *)

let rec collect_windows expr acc =
  match expr with
  | Window w -> if List.mem w acc then acc else w :: acc
  | Lit _ | Col _ -> acc
  | Neg e | Not e | Is_null { subject = e; _ } -> collect_windows e acc
  | Binop (_, a, b) -> collect_windows b (collect_windows a acc)
  | In_list (e, items) ->
      List.fold_left (fun acc e -> collect_windows e acc) (collect_windows e acc) items
  | Exists _ | Scalar_subquery _ -> acc
  | Like { subject; pattern; _ } ->
      collect_windows pattern (collect_windows subject acc)
  | Between { subject; lo; hi; _ } ->
      collect_windows hi (collect_windows lo (collect_windows subject acc))
  | Case { branches; else_ } ->
      let acc =
        List.fold_left
          (fun acc (c, r) -> collect_windows r (collect_windows c acc))
          acc branches
      in
      (match else_ with Some e -> collect_windows e acc | None -> acc)
  | Func (_, args) ->
      List.fold_left (fun acc e -> collect_windows e acc) acc args
  | Agg agg -> (
      match agg with
      | Count_star -> acc
      | Count e | Sum e | Min_agg e | Max_agg e | Avg e -> collect_windows e acc
      | Merkle_agg { input; order_by } ->
          List.fold_left
            (fun acc (e, _) -> collect_windows e acc)
            (collect_windows input acc)
            order_by)

(* For each row (by position), the values of every window function. *)
let compute_windows ctx rows windows =
  let indexed = List.mapi (fun i row -> (i, row)) rows in
  List.map
    (fun (Lag { input; order_by } as w) ->
      let ordered =
        let keyed =
          List.map
            (fun (i, row) ->
              (List.map (fun (e, _) -> eval { ctx with row } e) order_by, (i, row)))
            indexed
        in
        let compare_keys (ka, _) (kb, _) =
          let rec go ks dirs =
            match (ks, dirs) with
            | [], _ | _, [] -> 0
            | (a, b) :: rest, (_, dir) :: dir_rest ->
                let c = Value.compare a b in
                let c = match dir with Asc -> c | Desc -> -c in
                if c <> 0 then c else go rest dir_rest
          in
          go (List.combine ka kb) order_by
        in
        List.stable_sort compare_keys keyed |> List.map snd
      in
      let values = Array.make (List.length rows) Value.Null in
      let prev = ref None in
      List.iter
        (fun (i, row) ->
          (match !prev with
          | None -> values.(i) <- Value.Null
          | Some prev_row -> values.(i) <- eval { ctx with row = prev_row } input);
          prev := Some row)
        ordered;
      (w, values))
    windows

(* --------------------------------------------------------------- *)
(* FROM evaluation *)

(* The AS OF timestamp is a constant expression evaluated before any row
   context exists. Accept the natural spellings — a numeric literal, a
   DATETIME value, or a numeric string — and refuse everything else with
   a typed error rather than silently reading the wrong state. *)
let as_of_timestamp catalog expr =
  match eval (null_ctx catalog) expr with
  | Value.Float f -> f
  | Value.Int i -> float_of_int i
  | Value.Datetime f -> f
  | Value.String s -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> f
      | None ->
          err
            "FOR SYSTEM_TIME AS OF: malformed timestamp '%s' (expected a \
             unix timestamp)"
            s)
  | Value.Null -> err "FOR SYSTEM_TIME AS OF: timestamp is NULL"
  | v ->
      err "FOR SYSTEM_TIME AS OF: expected a timestamp, got %s"
        (Value.to_string v)

let rec eval_from catalog from =
  match from with
  | Table { name; alias; as_of } -> (
      let resolved =
        match as_of with
        | None -> catalog.lookup_table name
        | Some expr ->
            let ts = as_of_timestamp catalog expr in
            catalog.lookup_table_as_of name ~as_of:ts
      in
      match resolved with
      | None when as_of = None -> err "unknown table %s" name
      | None ->
          err "table %s has no FOR SYSTEM_TIME view (not a ledger table?)"
            name
      | Some (names, rows) ->
          let alias = Option.value alias ~default:name in
          Rel.make ~alias names rows)
  | Subquery { query; alias } ->
      Rel.rename (execute catalog query) ~alias
  | Openjson { arg; alias } ->
      let doc =
        match eval (null_ctx catalog) arg with
        | Value.String s -> s
        | v -> err "OPENJSON expects a JSON string, got %s" (Value.to_string v)
      in
      openjson_rel ~alias doc
  | Join { left; kind; right; on } ->
      let lrel = eval_from catalog left in
      let rrel = eval_from catalog right in
      join catalog lrel rrel kind on

and openjson_rel ~alias doc =
  let json =
    try Sjson.of_string doc
    with Sjson.Parse_error e -> err "OPENJSON: %s" e
  in
  let items =
    match json with
    | Sjson.List items -> items
    | Sjson.Obj _ -> [ json ]
    | _ -> err "OPENJSON: expected a JSON array or object"
  in
  (* Columns: keys in order of first appearance across all objects. *)
  let columns = ref [] in
  List.iter
    (fun item ->
      match item with
      | Sjson.Obj fields ->
          List.iter
            (fun (k, _) ->
              if not (List.mem k !columns) then columns := !columns @ [ k ])
            fields
      | _ -> err "OPENJSON: array elements must be objects")
    items;
  let value_of = function
    | Sjson.Null -> Value.Null
    | Sjson.Int i -> Value.Int i
    | Sjson.Float f -> Value.Float f
    | Sjson.Bool b -> Value.Bool b
    | Sjson.String s -> Value.String s
    | other -> Value.String (Sjson.to_string other)
  in
  let rows =
    List.map
      (fun item ->
        Array.of_list
          (List.map (fun k -> value_of (Sjson.member k item)) !columns))
      items
  in
  Rel.make ~alias !columns rows

and join catalog lrel rrel kind on =
  let combined_cols = Rel.concat_cols lrel rrel [] in
  (* Equi-join fast path: ON <left col> = <right col> runs as a hash join,
     which the verification queries depend on (they join per-transaction
     aggregates against the transactions system table). *)
  let equi =
    match on with
    | Binop
        ( Eq,
          Col { table = ta; column = ca },
          Col { table = tb; column = cb } ) -> (
        let pair (ta, ca) (tb, cb) =
          match
            ( Rel.resolve lrel ~table:ta ~column:ca,
              Rel.resolve rrel ~table:tb ~column:cb )
          with
          | Ok li, Ok ri -> Some (li, ri)
          | _ -> None
        in
        match pair (ta, ca) (tb, cb) with
        | Some x -> Some x
        | None -> pair (tb, cb) (ta, ca))
    | _ -> None
  in
  let lnulls = Array.make (Rel.arity lrel) Value.Null in
  let rnulls = Array.make (Rel.arity rrel) Value.Null in
  let out = ref [] in
  let right_rows = Array.of_list rrel.Rel.rows in
  let right_matched = Array.make (Array.length right_rows) false in
  (match equi with
  | Some (li, ri) ->
      let buckets : (Value.t, int list ref) Hashtbl.t =
        Hashtbl.create (Array.length right_rows)
      in
      Array.iteri
        (fun idx row ->
          let key = row.(ri) in
          if not (Value.is_null key) then
            match Hashtbl.find_opt buckets key with
            | Some cell -> cell := idx :: !cell
            | None -> Hashtbl.add buckets key (ref [ idx ]))
        right_rows;
      List.iter
        (fun lrow ->
          let key = lrow.(li) in
          let matches =
            if Value.is_null key then []
            else
              match Hashtbl.find_opt buckets key with
              | Some cell -> List.rev !cell
              | None -> []
          in
          if matches = [] then begin
            match kind with
            | Left | Full -> out := Array.append lrow rnulls :: !out
            | Inner | Right -> ()
          end
          else
            List.iter
              (fun ridx ->
                right_matched.(ridx) <- true;
                out := Array.append lrow right_rows.(ridx) :: !out)
              matches)
        lrel.Rel.rows
  | None ->
      (* General nested-loop join on an arbitrary predicate. *)
      List.iter
        (fun lrow ->
          let matched = ref false in
          Array.iteri
            (fun ridx rrow ->
              let row = Array.append lrow rrow in
              let ctx =
                { rel = combined_cols; row; group = None; windows = []; catalog }
              in
              if truthy (eval ctx on) then begin
                out := row :: !out;
                matched := true;
                right_matched.(ridx) <- true
              end)
            right_rows;
          if (not !matched) && (kind = Left || kind = Full) then
            out := Array.append lrow rnulls :: !out)
        lrel.Rel.rows);
  (match kind with
  | Right | Full ->
      Array.iteri
        (fun ridx rrow ->
          if not right_matched.(ridx) then
            out := Array.append lnulls rrow :: !out)
        right_rows
  | Inner | Left -> ());
  { combined_cols with Rel.rows = List.rev !out }

(* --------------------------------------------------------------- *)
(* SELECT pipeline *)

and projection_name i = function
  | Star -> err "internal: Star handled elsewhere"
  | Expr (_, Some alias) -> alias
  | Expr (Col { column; _ }, None) -> column
  | Expr (_, None) -> Printf.sprintf "col%d" (i + 1)

and has_aggregate expr =
  match expr with
  | Agg _ -> true
  | Lit _ | Col _ | Window _ -> false
  | Neg e | Not e | Is_null { subject = e; _ } -> has_aggregate e
  | Binop (_, a, b) -> has_aggregate a || has_aggregate b
  | In_list (e, items) -> has_aggregate e || List.exists has_aggregate items
  | Exists _ | Scalar_subquery _ -> false
  | Like { subject; pattern; _ } -> has_aggregate subject || has_aggregate pattern
  | Between { subject; lo; hi; _ } ->
      has_aggregate subject || has_aggregate lo || has_aggregate hi
  | Case { branches; else_ } ->
      List.exists (fun (c, r) -> has_aggregate c || has_aggregate r) branches
      || (match else_ with Some e -> has_aggregate e | None -> false)
  | Func (_, args) -> List.exists has_aggregate args

and execute catalog (q : select) : Rel.t =
  let input =
    match q.from with
    | Some from -> eval_from catalog from
    | None -> Rel.make [] [ [||] ]
  in
  let base_ctx =
    { rel = input; row = [||]; group = None; windows = []; catalog }
  in
  (* WHERE *)
  let rows =
    match q.where with
    | None -> input.Rel.rows
    | Some cond ->
        List.filter
          (fun row -> truthy (eval { base_ctx with row } cond))
          input.Rel.rows
  in
  let grouped =
    q.group_by <> []
    || List.exists
         (function Expr (e, _) -> has_aggregate e | Star -> false)
         q.projections
    || (match q.having with Some e -> has_aggregate e | None -> false)
  in
  if grouped then execute_grouped catalog q input rows
  else begin
    (* Window functions over the filtered rows. *)
    let windows =
      List.fold_left
        (fun acc p ->
          match p with Expr (e, _) -> collect_windows e acc | Star -> acc)
        [] q.projections
    in
    let windows =
      List.fold_left
        (fun acc (e, _) -> collect_windows e acc)
        windows q.order_by
    in
    let window_values = compute_windows base_ctx rows windows in
    let row_windows i =
      List.map (fun (w, values) -> (w, values.(i))) window_values
    in
    (* Project *)
    let out_names =
      List.concat_map
        (fun (i, p) ->
          match p with
          | Star -> Rel.column_names input
          | Expr _ -> [ projection_name i p ])
        (List.mapi (fun i p -> (i, p)) q.projections)
    in
    let out_rows_with_src =
      List.mapi
        (fun i row ->
          let ctx = { base_ctx with row; windows = row_windows i } in
          let out =
            List.concat_map
              (fun p ->
                match p with
                | Star -> Array.to_list row
                | Expr (e, _) -> [ eval ctx e ])
              q.projections
          in
          (Row.of_list out, row, row_windows i))
        rows
    in
    let out_rows_with_src =
      if not q.distinct then out_rows_with_src
      else begin
        let seen = Hashtbl.create 64 in
        List.filter
          (fun (out, _, _) ->
            let key = List.map Value.tagged_encode (Array.to_list out) in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.add seen key ();
              true
            end)
          out_rows_with_src
      end
    in
    let out_rel = Rel.make out_names [] in
    (* ORDER BY: prefer output columns (aliases), fall back to input. *)
    let sorted =
      if q.order_by = [] then out_rows_with_src
      else begin
        let key_of (out_row, in_row, wins) =
          List.map
            (fun (e, _) ->
              try eval { base_ctx with rel = out_rel; row = out_row } e
              with Exec_error _ ->
                eval { base_ctx with row = in_row; windows = wins } e)
            q.order_by
        in
        let keyed = List.map (fun t -> (key_of t, t)) out_rows_with_src in
        let cmp (ka, _) (kb, _) =
          let rec go ks dirs =
            match (ks, dirs) with
            | [], _ | _, [] -> 0
            | (a, b) :: rest, (_, dir) :: dir_rest ->
                let c = Value.compare a b in
                let c = match dir with Asc -> c | Desc -> -c in
                if c <> 0 then c else go rest dir_rest
          in
          go (List.combine ka kb) q.order_by
        in
        List.stable_sort cmp keyed |> List.map snd
      end
    in
    let final_rows = List.map (fun (o, _, _) -> o) sorted in
    let final_rows =
      match q.limit with
      | Some n -> List.filteri (fun i _ -> i < n) final_rows
      | None -> final_rows
    in
    Rel.make out_names final_rows
  end

and execute_grouped catalog q input rows =
  let base_ctx =
    { rel = input; row = [||]; group = None; windows = []; catalog }
  in
  (* Build groups in first-appearance order. *)
  let tbl : (Value.t list, Row.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      let key =
        List.map (fun e -> eval { base_ctx with row } e) q.group_by
      in
      match Hashtbl.find_opt tbl key with
      | Some cell -> cell := row :: !cell
      | None ->
          Hashtbl.add tbl key (ref [ row ]);
          order := key :: !order)
    rows;
  let groups =
    List.rev_map
      (fun key -> (key, List.rev !(Hashtbl.find tbl key)))
      !order
  in
  (* Implicit single group when aggregating without GROUP BY. *)
  let groups =
    if q.group_by = [] then [ ([], rows) ] else groups
  in
  let groups =
    match q.having with
    | None -> groups
    | Some cond ->
        List.filter
          (fun (_, grows) ->
            let row = match grows with r :: _ -> r | [] -> [||] in
            truthy (eval { base_ctx with row; group = Some grows } cond))
          groups
  in
  let out_names =
    List.mapi
      (fun i p ->
        match p with
        | Star -> err "SELECT * is not supported with GROUP BY"
        | Expr _ -> projection_name i p)
      q.projections
  in
  let out_rows =
    List.map
      (fun (_, grows) ->
        let row = match grows with r :: _ -> r | [] -> [||] in
        let ctx = { base_ctx with row; group = Some grows } in
        Row.of_list
          (List.map
             (fun p ->
               match p with
               | Star -> assert false
               | Expr (e, _) -> eval ctx e)
             q.projections))
      groups
  in
  let out_rows, groups =
    if not q.distinct then (out_rows, groups)
    else begin
      let seen = Hashtbl.create 64 in
      List.combine out_rows groups
      |> List.filter (fun (out, _) ->
             let key = List.map Value.tagged_encode (Array.to_list out) in
             if Hashtbl.mem seen key then false
             else begin
               Hashtbl.add seen key ();
               true
             end)
      |> List.split
    end
  in
  let out_rel = Rel.make out_names [] in
  let sorted =
    if q.order_by = [] then List.combine out_rows groups
    else begin
      let items = List.combine out_rows groups in
      let key_of (out_row, (_, grows)) =
        List.map
          (fun (e, _) ->
            try eval { base_ctx with rel = out_rel; row = out_row } e
            with Exec_error _ ->
              let row = match grows with r :: _ -> r | [] -> [||] in
              eval { base_ctx with row; group = Some grows } e)
          q.order_by
      in
      let keyed = List.map (fun t -> (key_of t, t)) items in
      let cmp (ka, _) (kb, _) =
        let rec go ks dirs =
          match (ks, dirs) with
          | [], _ | _, [] -> 0
          | (a, b) :: rest, (_, dir) :: dir_rest ->
              let c = Value.compare a b in
              let c = match dir with Asc -> c | Desc -> -c in
              if c <> 0 then c else go rest dir_rest
        in
        go (List.combine ka kb) q.order_by
      in
      List.stable_sort cmp keyed |> List.map snd
    end
  in
  let final = List.map fst sorted in
  let final =
    match q.limit with
    | Some n -> List.filteri (fun i _ -> i < n) final
    | None -> final
  in
  Rel.make out_names final

let () = execute_ref := execute

let query catalog text = execute catalog (Parser.parse text)
