open Ast

exception Parse_error of string

type state = { mutable tokens : Lexer.token list }

let fail msg = raise (Parse_error msg)

let peek st = match st.tokens with [] -> Lexer.Eof | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let describe = function
  | Lexer.Ident s -> Printf.sprintf "identifier %s" s
  | Lexer.Quoted_ident s -> Printf.sprintf "[%s]" s
  | Lexer.Int_lit i -> string_of_int i
  | Lexer.Float_lit f -> string_of_float f
  | Lexer.String_lit s -> Printf.sprintf "'%s'" s
  | Lexer.Symbol s -> Printf.sprintf "'%s'" s
  | Lexer.Eof -> "end of input"

let is_kw st kw =
  match Lexer.keyword (peek st) with Some k -> String.equal k kw | None -> false

let eat_kw st kw =
  if is_kw st kw then advance st
  else fail (Printf.sprintf "expected %s, found %s" kw (describe (peek st)))

let eat_symbol st sym =
  match peek st with
  | Lexer.Symbol s when String.equal s sym -> advance st
  | t -> fail (Printf.sprintf "expected '%s', found %s" sym (describe t))

let try_symbol st sym =
  match peek st with
  | Lexer.Symbol s when String.equal s sym ->
      advance st;
      true
  | _ -> false

let try_kw st kw =
  if is_kw st kw then begin
    advance st;
    true
  end
  else false

let ident st =
  match peek st with
  | Lexer.Ident s | Lexer.Quoted_ident s ->
      advance st;
      s
  | t -> fail (Printf.sprintf "expected identifier, found %s" (describe t))

(* Reserved words that terminate an implicit alias position. *)
let reserved =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "HAVING"; "ORDER"; "LIMIT"; "JOIN";
    "INNER"; "LEFT"; "RIGHT"; "FULL"; "OUTER"; "ON"; "AS"; "AND"; "OR";
    "NOT"; "NULL"; "TRUE"; "FALSE"; "CASE"; "WHEN"; "THEN"; "ELSE"; "END";
    "IS"; "IN"; "BY"; "ASC"; "DESC"; "OVER"; "UNION"; "LIKE"; "BETWEEN";
    "DISTINCT"; "INTO"; "VALUES"; "SET"; "EXISTS"; "FOR";
  ]

let is_reserved tok =
  match Lexer.keyword tok with
  | Some k -> List.mem k reserved
  | None -> false

let aggregate_names = [ "COUNT"; "SUM"; "MIN"; "MAX"; "AVG"; "MERKLETREEAGG" ]

let rec parse_select st =
  eat_kw st "SELECT";
  let distinct = try_kw st "DISTINCT" in
  let projections = parse_projections st in
  let from = if try_kw st "FROM" then Some (parse_from st) else None in
  let where = if try_kw st "WHERE" then Some (parse_expr_st st) else None in
  let group_by =
    if try_kw st "GROUP" then begin
      eat_kw st "BY";
      parse_expr_list st
    end
    else []
  in
  let having = if try_kw st "HAVING" then Some (parse_expr_st st) else None in
  let order_by =
    if try_kw st "ORDER" then begin
      eat_kw st "BY";
      parse_order_items st
    end
    else []
  in
  let limit =
    if try_kw st "LIMIT" then begin
      match peek st with
      | Lexer.Int_lit i ->
          advance st;
          Some i
      | t -> fail ("expected integer after LIMIT, found " ^ describe t)
    end
    else None
  in
  { distinct; projections; from; where; group_by; having; order_by; limit }

and parse_projections st =
  let parse_one () =
    if try_symbol st "*" then Star
    else begin
      let e = parse_expr_st st in
      let alias =
        if try_kw st "AS" then Some (ident st)
        else
          match peek st with
          | (Lexer.Ident _ | Lexer.Quoted_ident _) when not (is_reserved (peek st))
            ->
              Some (ident st)
          | _ -> None
      in
      Expr (e, alias)
    end
  in
  let first = parse_one () in
  let rec more acc =
    if try_symbol st "," then more (parse_one () :: acc) else List.rev acc
  in
  more [ first ]

and parse_order_items st =
  let parse_one () =
    let e = parse_expr_st st in
    let dir =
      if try_kw st "DESC" then Desc
      else begin
        ignore (try_kw st "ASC" : bool);
        Asc
      end
    in
    (e, dir)
  in
  let first = parse_one () in
  let rec more acc =
    if try_symbol st "," then more (parse_one () :: acc) else List.rev acc
  in
  more [ first ]

and parse_expr_list st =
  let first = parse_expr_st st in
  let rec more acc =
    if try_symbol st "," then more (parse_expr_st st :: acc) else List.rev acc
  in
  more [ first ]

and parse_from st =
  let left = parse_from_atom st in
  let rec joins left =
    let kind =
      if try_kw st "JOIN" then Some Inner
      else if is_kw st "INNER" then begin
        advance st;
        eat_kw st "JOIN";
        Some Inner
      end
      else if is_kw st "LEFT" then begin
        advance st;
        ignore (try_kw st "OUTER" : bool);
        eat_kw st "JOIN";
        Some Left
      end
      else if is_kw st "RIGHT" then begin
        advance st;
        ignore (try_kw st "OUTER" : bool);
        eat_kw st "JOIN";
        Some Right
      end
      else if is_kw st "FULL" then begin
        advance st;
        ignore (try_kw st "OUTER" : bool);
        eat_kw st "JOIN";
        Some Full
      end
      else None
    in
    match kind with
    | None -> left
    | Some kind ->
        let right = parse_from_atom st in
        eat_kw st "ON";
        let on = parse_expr_st st in
        joins (Join { left; kind; right; on })
  in
  joins left

and parse_from_atom st =
  if is_kw st "OPENJSON" then begin
    advance st;
    eat_symbol st "(";
    let arg = parse_expr_st st in
    eat_symbol st ")";
    ignore (try_kw st "AS" : bool);
    let alias = ident st in
    Openjson { arg; alias }
  end
  else if try_symbol st "(" then begin
    let query = parse_select st in
    eat_symbol st ")";
    ignore (try_kw st "AS" : bool);
    let alias = ident st in
    Subquery { query; alias }
  end
  else begin
    let name = ident st in
    (* T-SQL puts the temporal clause before the alias:
       FROM t FOR SYSTEM_TIME AS OF <ts> [AS] a. Accept the alias on
       either side so the natural `FROM t a FOR SYSTEM_TIME ...` also
       parses. *)
    let parse_alias () =
      if try_kw st "AS" then Some (ident st)
      else
        match peek st with
        | (Lexer.Ident _ | Lexer.Quoted_ident _) when not (is_reserved (peek st))
          ->
            Some (ident st)
        | _ -> None
    in
    let parse_as_of () =
      if try_kw st "FOR" then begin
        eat_kw st "SYSTEM_TIME";
        eat_kw st "AS";
        eat_kw st "OF";
        Some (parse_additive st)
      end
      else None
    in
    let alias = parse_alias () in
    let as_of = parse_as_of () in
    let alias = match alias with Some _ -> alias | None -> parse_alias () in
    Table { name; alias; as_of }
  end

and parse_expr_st st = parse_or st

and parse_or st =
  let left = parse_and st in
  if try_kw st "OR" then Binop (Or, left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if try_kw st "AND" then Binop (And, left, parse_and st) else left

and parse_not st =
  if try_kw st "NOT" then Not (parse_not st) else parse_comparison st

and parse_comparison st =
  let left = parse_additive st in
  if try_kw st "IS" then begin
    let positive = not (try_kw st "NOT") in
    eat_kw st "NULL";
    Is_null { subject = left; positive }
  end
  else if is_kw st "NOT" || is_kw st "IN" || is_kw st "LIKE" || is_kw st "BETWEEN"
  then begin
    let negated = try_kw st "NOT" in
    if try_kw st "IN" then begin
      eat_symbol st "(";
      let items = parse_expr_list st in
      eat_symbol st ")";
      let e = In_list (left, items) in
      if negated then Not e else e
    end
    else if try_kw st "LIKE" then
      Like { subject = left; pattern = parse_additive st; negated }
    else if try_kw st "BETWEEN" then begin
      let lo = parse_additive st in
      eat_kw st "AND";
      Between { subject = left; lo; hi = parse_additive st; negated }
    end
    else fail "expected IN, LIKE or BETWEEN after NOT"
  end
  else
    let op =
      match peek st with
      | Lexer.Symbol "=" -> Some Eq
      | Lexer.Symbol ("<>" | "!=") -> Some Neq
      | Lexer.Symbol "<" -> Some Lt
      | Lexer.Symbol "<=" -> Some Le
      | Lexer.Symbol ">" -> Some Gt
      | Lexer.Symbol ">=" -> Some Ge
      | _ -> None
    in
    match op with
    | None -> left
    | Some op ->
        advance st;
        Binop (op, left, parse_additive st)

and parse_additive st =
  let left = parse_multiplicative st in
  let rec go left =
    match peek st with
    | Lexer.Symbol "+" ->
        advance st;
        go (Binop (Add, left, parse_multiplicative st))
    | Lexer.Symbol "-" ->
        advance st;
        go (Binop (Sub, left, parse_multiplicative st))
    | Lexer.Symbol "||" ->
        advance st;
        go (Binop (Concat, left, parse_multiplicative st))
    | _ -> left
  in
  go left

and parse_multiplicative st =
  let left = parse_unary st in
  let rec go left =
    match peek st with
    | Lexer.Symbol "*" ->
        advance st;
        go (Binop (Mul, left, parse_unary st))
    | Lexer.Symbol "/" ->
        advance st;
        go (Binop (Div, left, parse_unary st))
    | Lexer.Symbol "%" ->
        advance st;
        go (Binop (Mod, left, parse_unary st))
    | _ -> left
  in
  go left

and parse_unary st =
  if try_symbol st "-" then Neg (parse_unary st) else parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.Int_lit i ->
      advance st;
      Lit (Relation.Value.Int i)
  | Lexer.Float_lit f ->
      advance st;
      Lit (Relation.Value.Float f)
  | Lexer.String_lit s ->
      advance st;
      Lit (Relation.Value.String s)
  | Lexer.Symbol "(" ->
      advance st;
      if is_kw st "SELECT" then begin
        let q = parse_select st in
        eat_symbol st ")";
        Scalar_subquery q
      end
      else begin
        let e = parse_expr_st st in
        eat_symbol st ")";
        e
      end
  | Lexer.Symbol "*" -> fail "unexpected '*' outside COUNT(*) or SELECT list"
  | Lexer.Ident _ | Lexer.Quoted_ident _ -> parse_name_or_call st
  | t -> fail ("unexpected " ^ describe t)

and parse_name_or_call st =
  match Lexer.keyword (peek st) with
  | Some "NULL" ->
      advance st;
      Lit Relation.Value.Null
  | Some "TRUE" ->
      advance st;
      Lit (Relation.Value.Bool true)
  | Some "FALSE" ->
      advance st;
      Lit (Relation.Value.Bool false)
  | Some "CASE" ->
      advance st;
      parse_case st
  | Some "EXISTS" ->
      advance st;
      eat_symbol st "(";
      let q = parse_select st in
      eat_symbol st ")";
      Exists q
  | _ -> (
      let name = ident st in
      match peek st with
      | Lexer.Symbol "(" ->
          advance st;
          parse_call st name
      | Lexer.Symbol "." ->
          advance st;
          let column = ident st in
          Col { table = Some name; column }
      | _ -> Col { table = None; column = name })

and parse_case st =
  let branches = ref [] in
  while is_kw st "WHEN" do
    advance st;
    let cond = parse_expr_st st in
    eat_kw st "THEN";
    let result = parse_expr_st st in
    branches := (cond, result) :: !branches
  done;
  if !branches = [] then fail "CASE requires at least one WHEN branch";
  let else_ = if try_kw st "ELSE" then Some (parse_expr_st st) else None in
  eat_kw st "END";
  Case { branches = List.rev !branches; else_ }

and parse_call st name =
  let upper = String.uppercase_ascii name in
  if String.equal upper "COUNT" && try_symbol st "*" then begin
    eat_symbol st ")";
    Agg Count_star
  end
  else if String.equal upper "MERKLETREEAGG" then begin
    let input = parse_expr_st st in
    let order_by =
      if try_kw st "ORDER" then begin
        eat_kw st "BY";
        parse_order_items st
      end
      else []
    in
    eat_symbol st ")";
    Agg (Merkle_agg { input; order_by })
  end
  else if String.equal upper "LAG" then begin
    let input = parse_expr_st st in
    eat_symbol st ")";
    eat_kw st "OVER";
    eat_symbol st "(";
    eat_kw st "ORDER";
    eat_kw st "BY";
    let order_by = parse_order_items st in
    eat_symbol st ")";
    Window (Lag { input; order_by })
  end
  else begin
    let args =
      if try_symbol st ")" then []
      else begin
        let args = parse_expr_list st in
        eat_symbol st ")";
        args
      end
    in
    if List.mem upper aggregate_names then begin
      match (upper, args) with
      | "COUNT", [ e ] -> Agg (Count e)
      | "SUM", [ e ] -> Agg (Sum e)
      | "MIN", [ e ] -> Agg (Min_agg e)
      | "MAX", [ e ] -> Agg (Max_agg e)
      | "AVG", [ e ] -> Agg (Avg e)
      | _ -> fail (Printf.sprintf "aggregate %s expects one argument" upper)
    end
    else Func (upper, args)
  end

let parse_insert st =
  eat_kw st "INSERT";
  eat_kw st "INTO";
  let table = ident st in
  let columns =
    if try_symbol st "(" then begin
      let first = ident st in
      let rec more acc =
        if try_symbol st "," then more (ident st :: acc) else List.rev acc
      in
      let cols = more [ first ] in
      eat_symbol st ")";
      Some cols
    end
    else None
  in
  eat_kw st "VALUES";
  let parse_tuple () =
    eat_symbol st "(";
    let values = parse_expr_list st in
    eat_symbol st ")";
    values
  in
  let first = parse_tuple () in
  let rec more acc =
    if try_symbol st "," then more (parse_tuple () :: acc) else List.rev acc
  in
  Insert { table; columns; rows = more [ first ] }

let parse_update st =
  eat_kw st "UPDATE";
  let table = ident st in
  eat_kw st "SET";
  let parse_assignment () =
    let column = ident st in
    eat_symbol st "=";
    (column, parse_expr_st st)
  in
  let first = parse_assignment () in
  let rec more acc =
    if try_symbol st "," then more (parse_assignment () :: acc)
    else List.rev acc
  in
  let assignments = more [ first ] in
  let where = if try_kw st "WHERE" then Some (parse_expr_st st) else None in
  Update { table; assignments; where }

let parse_delete st =
  eat_kw st "DELETE";
  eat_kw st "FROM";
  let table = ident st in
  let where = if try_kw st "WHERE" then Some (parse_expr_st st) else None in
  Delete { table; where }

let finish st result =
  ignore (try_symbol st ";" : bool);
  (match peek st with
  | Lexer.Eof -> ()
  | t -> fail ("trailing input: " ^ describe t));
  result

let parse_statement input =
  let st = { tokens = Lexer.tokenize input } in
  match Lexer.keyword (peek st) with
  | Some "SELECT" -> finish st (Select (parse_select st))
  | Some "INSERT" -> finish st (parse_insert st)
  | Some "UPDATE" -> finish st (parse_update st)
  | Some "DELETE" -> finish st (parse_delete st)
  | _ -> fail "expected SELECT, INSERT, UPDATE or DELETE"

let parse input =
  let st = { tokens = Lexer.tokenize input } in
  let q = parse_select st in
  ignore (try_symbol st ";" : bool);
  (match peek st with
  | Lexer.Eof -> ()
  | t -> fail ("trailing input: " ^ describe t));
  q

let parse_expr input =
  let st = { tokens = Lexer.tokenize input } in
  let e = parse_expr_st st in
  (match peek st with
  | Lexer.Eof -> ()
  | t -> fail ("trailing input: " ^ describe t));
  e
