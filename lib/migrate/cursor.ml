(* Durable migration cursor.

   The migration driver's only persistent state: the primary key of the
   last source row the server acknowledged copying, plus a running row
   count. Written atomically (tmp + rename, same idiom as the audit
   mark) after every acked batch, so a migrator killed mid-copy resumes
   from the last durable key instead of rescanning — and because the
   server-side [Migrate] request skips keys already present in the
   target, even a cursor that is one batch stale only re-sends work the
   server will recognise and skip. *)

let points = "migrate.cursor"
let () = Fault.Fsutil.register_atomic_points points

type t = {
  source : string;  (** plain table being copied from *)
  target : string;  (** ledger table being copied into *)
  last_key : Relation.Value.t list;
      (** primary key of the last row acked durable in the target;
          [[]] = nothing copied yet *)
  copied : int;  (** rows copied across all batches so far *)
}

let start ~source ~target = { source; target; last_key = []; copied = 0 }

let to_json t =
  Sjson.Obj
    [
      ("source", Sjson.String t.source);
      ("target", Sjson.String t.target);
      ( "last_key",
        Sjson.List (List.map Relation.Value.to_tagged_json t.last_key) );
      ("copied", Sjson.Int t.copied);
    ]

let of_json json =
  match (Sjson.member "source" json, Sjson.member "target" json) with
  | Sjson.String source, Sjson.String target -> (
      let copied =
        match Sjson.member "copied" json with Sjson.Int i -> i | _ -> 0
      in
      match Sjson.member "last_key" json with
      | Sjson.List vs -> (
          let parsed = List.map Relation.Value.of_tagged_json vs in
          if List.mem None parsed then Error "cursor last_key has a bad value"
          else
            match List.map Option.get parsed with
            | last_key -> Ok { source; target; last_key; copied })
      | _ -> Error "cursor is missing last_key"
      )
  | _ -> Error "cursor is missing source/target"

let save ~path t =
  Fault.Fsutil.atomic_write ~point_prefix:points ~path
    (Sjson.to_string (to_json t))

(* [Ok None] = no cursor yet: a fresh migration. A present-but-broken
   cursor is an error, not a silent restart — restarting from the
   beginning is harmless for correctness (copies are idempotent) but
   would hide the corruption from the operator. *)
let load ~path =
  if not (Sys.file_exists path) then Ok None
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error e -> Error e
    | contents -> (
        match Sjson.of_string contents with
        | exception Sjson.Parse_error e ->
            Error (Printf.sprintf "migration cursor %s is not JSON: %s" path e)
        | json -> (
            match of_json json with
            | Ok t -> Ok (Some t)
            | Error e -> Error e))
