(* Online-migration driver: the client side of `sqlledger migrate`.

   Copies a plain table into a ledger table through the wire protocol's
   [Migrate] request, one group-commit-sized batch per round trip. Each
   batch commits server-side as an ordinary ledger transaction under the
   session's authenticated principal, so OLTP traffic, receipts and the
   audit stream all stay live while the copy runs. After every acked
   batch the durable {!Cursor} advances; a migrator killed at any point
   resumes from the cursor, and the server skips keys that already made
   it into the target, so the copy converges no matter where it died.

   The run finishes with a differential equivalence check (full SELECT
   of source and target, compared as multisets) and a fresh database
   digest anchoring the migrated state. *)

module Protocol = Wire.Protocol

type summary = {
  rows_copied : int;  (** rows this run copied (excludes resumed work) *)
  rows_total : int;  (** rows in the target when the copy finished *)
  batches : int;  (** Migrate round trips this run *)
  resumed_at : int;  (** cursor's copied-count when this run started *)
  verified : bool;  (** differential source/target compare passed *)
  digest : Sjson.t option;  (** digest anchoring the migrated state *)
}

let default_batch = 512

let sorted_rows rows = List.sort (List.compare Relation.Value.compare) rows

(* Full-table differential compare. Both sides come back in primary-key
   scan order, but sort anyway: equivalence must not depend on the
   server's iteration order. *)
let differential_check ~call ~source ~target =
  let fetch name =
    match call (Protocol.Query { sql = "SELECT * FROM " ^ name }) with
    | Ok (Protocol.Rows_r { rows; _ }) -> Ok (sorted_rows rows)
    | Ok (Protocol.Error_r { message; _ }) -> Error (name ^ ": " ^ message)
    | Ok _ -> Error (name ^ ": unexpected response to SELECT")
    | Error e -> Error (name ^ ": " ^ e)
  in
  match (fetch source, fetch target) with
  | Error e, _ | _, Error e -> Error e
  | Ok src, Ok tgt ->
      if List.compare (List.compare Relation.Value.compare) src tgt = 0 then
        Ok (List.length tgt)
      else
        Error
          (Printf.sprintf
             "differential check FAILED: %s has %d row(s), %s has %d and the \
              contents differ"
             source (List.length src) target (List.length tgt))

let run ?(batch = default_batch) ?cursor_path ?(log = ignore) ~client ~source
    ~target () =
  let call req = Wire.Client.call_retry client req in
  let cursor0 =
    match cursor_path with
    | None -> Ok (Cursor.start ~source ~target)
    | Some path -> (
        match Cursor.load ~path with
        | Error e -> Error e
        | Ok None -> Ok (Cursor.start ~source ~target)
        | Ok (Some c) ->
            if c.Cursor.source <> source || c.Cursor.target <> target then
              Error
                (Printf.sprintf
                   "cursor %s belongs to a different migration (%s -> %s)"
                   path c.Cursor.source c.Cursor.target)
            else begin
              log
                (Printf.sprintf
                   "resuming from persisted cursor: %d row(s) already copied"
                   c.Cursor.copied);
              Ok c
            end)
  in
  match cursor0 with
  | Error e -> Error e
  | Ok cursor0 -> (
      let resumed_at = cursor0.Cursor.copied in
      let persist c =
        match cursor_path with
        | None -> ()
        | Some path -> Cursor.save ~path c
      in
      let rec copy cursor batches =
        let req =
          Protocol.Migrate
            {
              source;
              target;
              after_key = cursor.Cursor.last_key;
              limit = batch;
            }
        in
        match call req with
        | Ok (Protocol.Migrate_r { copied; last_key; finished }) ->
            let cursor =
              {
                cursor with
                Cursor.copied = cursor.Cursor.copied + copied;
                last_key =
                  (if last_key = [] then cursor.Cursor.last_key else last_key);
              }
            in
            persist cursor;
            if copied > 0 then
              log
                (Printf.sprintf "batch %d: copied %d row(s) (total %d)"
                   (batches + 1) copied cursor.Cursor.copied);
            if finished then Ok (cursor, batches + 1)
            else copy cursor (batches + 1)
        | Ok (Protocol.Error_r { code; message; _ }) ->
            Error
              (Printf.sprintf "%s: %s"
                 (Protocol.error_code_to_string code)
                 message)
        | Ok _ -> Error "unexpected response to migrate"
        | Error e -> Error e
      in
      match copy cursor0 0 with
      | Error e -> Error e
      | Ok (cursor, batches) -> (
          log "copy complete; running differential equivalence check";
          match differential_check ~call ~source ~target with
          | Error e -> Error e
          | Ok rows_total ->
              let digest =
                match call Protocol.Digest with
                | Ok (Protocol.Digest_r json) -> Some json
                | _ -> None
              in
              Ok
                {
                  rows_copied = cursor.Cursor.copied - resumed_at;
                  rows_total;
                  batches;
                  resumed_at;
                  verified = true;
                  digest;
                }))
