type analysis = {
  pending_commits : Log_record.commit_info list;
  last_checkpoint_lsn : Wal.lsn option;
  highest_txn_id : int;
  highest_block_id : int;
}

let analyze entries =
  (* Pass 1: the latest checkpoint tells us which commits were already
     flushed to the system table. *)
  let flushed_upto, last_checkpoint_lsn =
    List.fold_left
      (fun (upto, ckpt) (lsn, record) ->
        match record with
        | Log_record.Checkpoint { flushed_upto_lsn } ->
            (flushed_upto_lsn, Some lsn)
        | _ -> (upto, ckpt))
      (0, None) entries
  in
  let pending_commits, highest_txn_id, highest_block_id =
    List.fold_left
      (fun (pending, hi_txn, hi_block) (lsn, record) ->
        match record with
        | Log_record.Commit c ->
            let pending =
              if lsn > flushed_upto then c :: pending else pending
            in
            (pending, max hi_txn c.txn_id, max hi_block c.block_id)
        | Log_record.Begin { txn_id }
        | Log_record.Abort { txn_id }
        | Log_record.Prepare { txn_id; _ } ->
            (pending, max hi_txn txn_id, hi_block)
        | Log_record.Checkpoint _ | Log_record.Data _ | Log_record.Ddl _
        | Log_record.Block_close _ ->
            (pending, hi_txn, hi_block))
      ([], 0, 0) entries
  in
  {
    pending_commits = List.rev pending_commits;
    last_checkpoint_lsn;
    highest_txn_id;
    highest_block_id;
  }

let analyze_file path = Result.map analyze (Wal.load path)
