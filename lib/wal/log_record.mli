(** Write-ahead-log records (paper §3.3.2).

    SQL Ledger extends the COMMIT record with the ledger transaction entry:
    the block id and the transaction's ordinal within the block, plus the
    per-table Merkle roots — everything needed to reconstruct the in-memory
    Database Ledger queue during the analysis phase of recovery. *)

type commit_info = {
  txn_id : int;
  commit_ts : float;  (** seconds since the Unix epoch *)
  user : string;      (** identity that executed the transaction *)
  block_id : int;     (** ledger block the transaction was assigned to *)
  ordinal : int;      (** position within the block *)
  table_roots : (int * string) list;
      (** (ledger table id, Merkle root over the row versions the
          transaction wrote in that table) — the paper's
          (ledger_table_id, merkle_root_hash) tuples *)
}

type t =
  | Begin of { txn_id : int }
  | Commit of commit_info
  | Abort of { txn_id : int }
  | Checkpoint of { flushed_upto_lsn : int }
      (** All COMMIT records with LSN <= [flushed_upto_lsn] have had their
          ledger entries flushed to the transactions system table. *)
  | Data of { txn_id : int; ops : Sjson.t }
      (** Logical redo: the row operations of a transaction, written just
          before its COMMIT. The payload shape belongs to the database
          layer; the log treats it as opaque JSON. *)
  | Ddl of { payload : Sjson.t }
      (** Structural change (create/drop table, column, index), applied
          outside any transaction during replay. *)
  | Block_close of { block_id : int; closed_ts : float }
      (** A ledger block closed (by fill or digest generation); replay
          closes blocks at the same points so block boundaries — and hence
          digests — reproduce exactly. *)
  | Prepare of {
      gid : string;
      txn_id : int;
      user : string;
      table_roots : (int * string) list;
    }
      (** Two-phase-commit participant vote: the transaction's DATA
          records are durable and this shard promises to commit [gid] if
          the coordinator says so. A PREPARE with no later COMMIT/ABORT
          for the same txn_id is in-doubt — replay withholds its effects
          and surfaces the gid for resolution. *)

val to_json : t -> Sjson.t
val of_json : Sjson.t -> (t, string) result
val to_line : t -> string
(** Single-line JSON, the on-disk format. *)

val of_line : string -> (t, string) result
val pp : Format.formatter -> t -> unit
