(** Append-only write-ahead log with monotonically increasing LSNs.

    The log lives in memory and can additionally be mirrored to a file (one
    record per line), which is what crash-recovery replays. On-disk records
    are framed as [#crc32 len lsn payload] so that recovery can distinguish
    a torn tail (crash mid-append) from corruption in the middle of the
    file; the legacy un-framed format (bare JSON payload per line) is still
    readable. *)

type t

type lsn = int

val create :
  ?path:string ->
  ?append:bool ->
  ?first_lsn:lsn ->
  ?sync_commits:bool ->
  unit ->
  t
(** When [path] is given, every append is written through and flushed to the
    file (truncating any existing file, unless [append] is set — then new
    records are written after the existing contents, which the caller is
    expected to have validated and whose numbering [first_lsn] must
    continue; the replica's durable copy reopens this way). [first_lsn]
    (default 1) is the LSN the next append receives — compaction passes the
    continuation of the previous log's numbering so LSNs stay globally
    monotonic across truncations. When [sync_commits] is true (the
    default), appending a [Commit] record additionally fsyncs the file:
    that is the durability point of a transaction. *)

val append : t -> Log_record.t -> lsn
(** Durably append a record; returns its LSN. Writes are routed through the
    ["wal.append"] / ["wal.sync"] failpoints. *)

val append_batch : t -> Log_record.t list -> lsn list
(** Group commit: append several records as one batch-atomic frame
    ([@crc len first_lsn count plen payload ...]) sharing a single
    durability barrier — if the batch contains a [Commit] record and
    [sync_commits] is set, exactly one fsync covers the whole batch.
    Because the frame is one checksummed line, a crash mid-append tears
    the entire batch: recovery replays either all of it or none of it,
    never a prefix. Returns the records' consecutive LSNs. Writes are
    routed through the ["wal.batch_append"] / ["wal.batch_sync"]
    failpoints. [append_batch t []] is a no-op. *)

val last_lsn : t -> lsn
(** [first_lsn - 1] when empty (0 for a fresh log). *)

val advance_to : t -> lsn -> unit
(** Ensure the next append's LSN is strictly greater than the argument.
    Recovery calls this after replaying records so re-attached logs never
    reuse an LSN already on disk. *)

val records : t -> (lsn * Log_record.t) list
(** All records, in LSN order. *)

val records_from : t -> lsn -> (lsn * Log_record.t) list
(** Records with LSN strictly greater than the argument. Costs O(matching
    records): this is the primary's per-replica tail read. *)

val first_available : t -> lsn option
(** LSN of the oldest record still held in memory ([None] when empty). A
    log re-attached after compaction or recovery starts past LSN 1, so a
    subscriber asking for history before this point must be fed a snapshot
    instead of a stream. *)

val sync : t -> unit
(** Flush and fsync the backing file (no-op for in-memory logs): the
    durability barrier of the server's graceful shutdown. Per-commit
    durability is already handled inline by {!append}. *)

val close : t -> unit

type loaded = {
  l_records : (lsn * Log_record.t) list;
  l_torn : bool;  (** a torn final record was dropped *)
}

val load_ex : string -> (loaded, string) result
(** Read a log file back. A record that fails to parse or checksum is a
    *torn tail* if nothing but blank space follows it — it is dropped and
    [l_torn] is set. A bad record followed by further data is mid-file
    corruption: [Error] with the failing record's position and the last
    good LSN. Framed records must have strictly increasing LSNs; legacy
    lines are numbered sequentially after the previous record. *)

val load : string -> ((lsn * Log_record.t) list, string) result
(** [load_ex] without the torn-tail flag. *)

(** Incremental tailing of a live log file. A cursor remembers how many
    bytes it has consumed, so each {!Tail.poll} reads and parses only the
    records appended since the previous poll — O(new), where re-loading
    the whole file per poll (the old [Replica.feed_from_file] behaviour)
    was O(file). *)
module Tail : sig
  type cursor

  val create : ?after:lsn -> string -> cursor
  (** Cursor at the start of the file; records with LSN at or below
      [after] (default 0) are parsed but not redelivered, so a restarted
      tailer resumes from its durable position. *)

  val poll : cursor -> ((lsn * Log_record.t) list, string) result
  (** New complete records since the last poll, in LSN order. A final
      line missing its newline (still being written, or torn by a crash)
      is left for the next poll. Errors when a complete line fails to
      parse or the file shrank below the cursor — the file no longer
      matches the cursor's history and the caller must resynchronise. *)

  val path : cursor -> string

  val position : cursor -> lsn
  (** LSN of the last record delivered (or the initial [after]). *)
end
