type lsn = int

(* On-disk format. One record per line. Two formats coexist:

   - Framed (written since the crash-safety work):

       #CCCCCCCC LLL NNN {"type":...}
        \______/ \_/ \_/ \__________/
         crc32   len lsn   payload

     [len] is the byte length of the body "NNN {...}" (LSN field, one
     space, payload); [crc32] is the CRC-32 of that body. The explicit LSN
     keeps the sequence monotonic across log truncations (compaction opens
     a fresh file whose first record continues the old numbering), which is
     what lets recovery line a snapshot's recorded position up against the
     log tail. The checksum lets [load] distinguish a torn tail (crash
     mid-append: drop it and proceed) from corruption in the middle of the
     file (fail loudly).

   - Batched (group commit): several records share one frame and one
     durability barrier:

       @CCCCCCCC LLL FFF N PLEN {"type":...} PLEN {"type":...} ...
        \______/ \_/ \_/ | \________________/
          crc32  len |   |  N length-prefixed payloads
                     |  record count
                  first LSN

     [len]/[crc32] cover the whole body (first LSN, count, and every
     payload), and the records take LSNs [first .. first+N-1]. Because the
     batch is a single checksummed line, a crash mid-append tears the
     whole batch — recovery can never observe a prefix of it, which is
     what makes group commit batch-atomic.

   - Legacy (the original format): the bare JSON payload. Still loadable;
     records are numbered sequentially from the previous LSN. A torn legacy
     tail is recognised by its failure to parse with nothing but blank
     space after it. *)

type t = {
  mutable entries : (lsn * Log_record.t) list;  (* newest first *)
  mutable next_lsn : lsn;
  channel : out_channel option;
  line_buf : Buffer.t;  (* reused across appends; one line per record *)
  batch_buf : Buffer.t;  (* scratch for one payload while batch-framing *)
  sync_commits : bool;
}

let point_append = "wal.append"
let point_sync = "wal.sync"
let point_batch_append = "wal.batch_append"
let point_batch_sync = "wal.batch_sync"

let () =
  Fault.register point_append;
  Fault.register point_sync;
  Fault.register point_batch_append;
  Fault.register point_batch_sync

let create ?path ?(append = false) ?(first_lsn = 1) ?(sync_commits = true) () =
  let channel =
    Option.map
      (fun p ->
        if append then open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 p
        else open_out p)
      path
  in
  {
    entries = [];
    next_lsn = first_lsn;
    channel;
    line_buf = Buffer.create 256;
    batch_buf = Buffer.create 256;
    sync_commits;
  }

let fsync_channel oc =
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let append t record =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  t.entries <- (lsn, record) :: t.entries;
  (match t.channel with
  | Some oc ->
      Buffer.clear t.line_buf;
      Sjson.write t.line_buf (Log_record.to_json record);
      let lsn_s = string_of_int lsn in
      let body_len = String.length lsn_s + 1 + Buffer.length t.line_buf in
      let crc =
        Fault.Crc32.(
          finish
            (update_buffer (update_char (update_string init lsn_s) ' ')
               t.line_buf))
      in
      Fault.output point_append oc
        (Printf.sprintf "#%08lx %d %s " crc body_len lsn_s);
      Fault.output_buffer point_append oc t.line_buf;
      Fault.output point_append oc "\n";
      (* Durability point: a transaction is committed once its COMMIT
         record is on stable storage, so commit records are synced. *)
      (match record with
      | Log_record.Commit _ when t.sync_commits ->
          flush oc;
          Fault.trip point_sync;
          fsync_channel oc
      | _ -> flush oc)
  | None -> ());
  lsn

let append_batch t batch =
  match batch with
  | [] -> []
  | _ ->
      let first = t.next_lsn in
      let lsns =
        List.map
          (fun record ->
            let lsn = t.next_lsn in
            t.next_lsn <- lsn + 1;
            t.entries <- (lsn, record) :: t.entries;
            lsn)
          batch
      in
      (match t.channel with
      | Some oc ->
          let body = t.line_buf in
          Buffer.clear body;
          Buffer.add_string body (string_of_int first);
          Buffer.add_char body ' ';
          Buffer.add_string body (string_of_int (List.length batch));
          let scratch = t.batch_buf in
          List.iter
            (fun record ->
              Buffer.clear scratch;
              Sjson.write scratch (Log_record.to_json record);
              Buffer.add_char body ' ';
              Buffer.add_string body (string_of_int (Buffer.length scratch));
              Buffer.add_char body ' ';
              Buffer.add_buffer body scratch)
            batch;
          let crc = Fault.Crc32.(finish (update_buffer init body)) in
          Fault.output point_batch_append oc
            (Printf.sprintf "@%08lx %d " crc (Buffer.length body));
          Fault.output_buffer point_batch_append oc body;
          Fault.output point_batch_append oc "\n";
          flush oc;
          (* Single durability barrier for the whole batch: one fsync
             covers every commit in it. *)
          if
            t.sync_commits
            && List.exists
                 (function Log_record.Commit _ -> true | _ -> false)
                 batch
          then begin
            Fault.trip point_batch_sync;
            fsync_channel oc
          end
      | None -> ());
      lsns

let last_lsn t = t.next_lsn - 1

(* Recovery may learn (from a replayed log or a snapshot) that the durable
   history already extends to [lsn]; never reuse those numbers. *)
let advance_to t lsn = if lsn >= t.next_lsn then t.next_lsn <- lsn + 1

let records t = List.rev t.entries

(* [entries] is newest-first with strictly increasing LSNs, so collecting
   while [l > after] and stopping at the first older record costs O(new),
   not O(log): this is the primary's per-replica tail read, which runs on
   every feed-loop iteration. *)
let records_from t after =
  let rec take acc = function
    | ((l, _) as e) :: rest when l > after -> take (e :: acc) rest
    | _ -> acc
  in
  take [] t.entries

let first_available t =
  let rec last = function
    | [] -> None
    | [ (l, _) ] -> Some l
    | _ :: rest -> last rest
  in
  last t.entries

(* Force everything appended so far onto stable storage (the server's
   graceful-shutdown barrier; per-commit durability is handled inline by
   [append]). *)
let sync t =
  Option.iter
    (fun oc ->
      flush oc;
      fsync_channel oc)
    t.channel

let close t = Option.iter close_out t.channel

(* ------------------------------------------------------------------ *)
(* Loading *)

type loaded = { l_records : (lsn * Log_record.t) list; l_torn : bool }

let is_blank s =
  String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r' || c = '\n') s

(* "#CCCCCCCC LEN LSN PAYLOAD" -> (lsn, payload) *)
let parse_frame line =
  let n = String.length line in
  if n < 10 || line.[9] <> ' ' then Error "malformed frame header"
  else
    match Int32.of_string_opt ("0x" ^ String.sub line 1 8) with
    | None -> Error "bad frame checksum field"
    | Some crc -> (
        match String.index_from_opt line 10 ' ' with
        | None -> Error "truncated frame"
        | Some sp -> (
            match int_of_string_opt (String.sub line 10 (sp - 10)) with
            | None -> Error "bad frame length field"
            | Some len ->
                let body_off = sp + 1 in
                let body_len = n - body_off in
                if body_len <> len then
                  Error
                    (Printf.sprintf "frame body is %d bytes, header says %d"
                       body_len len)
                else if Fault.Crc32.substring line ~off:body_off ~len <> crc
                then Error "frame checksum mismatch"
                else
                  (match String.index_from_opt line body_off ' ' with
                  | None -> Error "frame body missing LSN"
                  | Some sp2 -> (
                      match
                        int_of_string_opt
                          (String.sub line body_off (sp2 - body_off))
                      with
                      | None -> Error "bad LSN field"
                      | Some lsn ->
                          Ok (lsn, String.sub line (sp2 + 1) (n - sp2 - 1))))))

exception Bad_batch of string

(* "@CCCCCCCC LEN FIRST COUNT (PLEN PAYLOAD)*" -> (first_lsn, payloads).
   The length/checksum check runs over the whole body, so a torn batch
   never yields a prefix of its records — it fails here as one unit. *)
let parse_batch_frame line =
  let n = String.length line in
  if n < 10 || line.[9] <> ' ' then Error "malformed batch header"
  else
    match Int32.of_string_opt ("0x" ^ String.sub line 1 8) with
    | None -> Error "bad batch checksum field"
    | Some crc -> (
        match String.index_from_opt line 10 ' ' with
        | None -> Error "truncated batch frame"
        | Some sp -> (
            match int_of_string_opt (String.sub line 10 (sp - 10)) with
            | None -> Error "bad batch length field"
            | Some len ->
                let body_off = sp + 1 in
                let body_len = n - body_off in
                if body_len <> len then
                  Error
                    (Printf.sprintf "batch body is %d bytes, header says %d"
                       body_len len)
                else if Fault.Crc32.substring line ~off:body_off ~len <> crc
                then Error "batch checksum mismatch"
                else
                  let pos = ref body_off in
                  (* Reads an integer terminated by a single space and
                     leaves [pos] just past the space. *)
                  let read_int () =
                    match String.index_from_opt line !pos ' ' with
                    | None -> raise (Bad_batch "batch body missing field")
                    | Some sp2 -> (
                        match
                          int_of_string_opt (String.sub line !pos (sp2 - !pos))
                        with
                        | None -> raise (Bad_batch "bad batch integer field")
                        | Some v ->
                            pos := sp2 + 1;
                            v)
                  in
                  (try
                     let first = read_int () in
                     let count = read_int () in
                     if count <= 0 then raise (Bad_batch "bad batch count");
                     let payloads = ref [] in
                     for i = 1 to count do
                       let plen = read_int () in
                       if plen < 0 || !pos + plen > n then
                         raise (Bad_batch "batch payload overruns frame");
                       payloads := String.sub line !pos plen :: !payloads;
                       pos := !pos + plen;
                       if i < count then
                         if !pos < n && line.[!pos] = ' ' then incr pos
                         else raise (Bad_batch "batch payloads not separated")
                     done;
                     if !pos <> n then
                       raise (Bad_batch "trailing bytes after batch payloads");
                     Ok (first, List.rev !payloads)
                   with Bad_batch reason -> Error reason)))

(* Parse one non-blank log line into its records. [prev_lsn] is the LSN
   of the last successfully parsed record: framed records must carry
   strictly increasing LSNs, and legacy bare-JSON lines are numbered
   sequentially after it. A batch frame yields several records with
   consecutive LSNs from its first. *)
let parse_line ~prev_lsn line =
  if line.[0] = '#' then
    match parse_frame line with
    | Error _ as e -> e
    | Ok (lsn, payload) ->
        if lsn <= prev_lsn then
          Error (Printf.sprintf "non-monotonic LSN %d after %d" lsn prev_lsn)
        else Result.map (fun r -> [ (lsn, r) ]) (Log_record.of_line payload)
  else if line.[0] = '@' then
    match parse_batch_frame line with
    | Error _ as e -> e
    | Ok (first, payloads) ->
        if first <= prev_lsn then
          Error (Printf.sprintf "non-monotonic LSN %d after %d" first prev_lsn)
        else
          let rec decode i acc = function
            | [] -> Ok (List.rev acc)
            | p :: rest -> (
                match Log_record.of_line p with
                | Ok r -> decode (i + 1) ((first + i, r) :: acc) rest
                | Error _ as e -> e)
          in
          decode 0 [] payloads
  else Result.map (fun r -> [ (prev_lsn + 1, r) ]) (Log_record.of_line line)

let load_ex path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let out = ref [] in
          let prev_lsn = ref 0 in
          let count = ref 0 in
          let torn = ref false in
          let err = ref None in
          (* A record that fails to parse is a torn tail — expected after a
             crash mid-append — if and only if nothing but blank space
             follows it; anything after a bad record is corruption and must
             not be silently skipped. *)
          let torn_or_corrupt reason =
            if is_blank (In_channel.input_all ic) then torn := true
            else
              err :=
                Some
                  (Printf.sprintf
                     "%s: corrupt WAL record %d (after LSN %d): %s" path
                     !count !prev_lsn reason)
          in
          let continue = ref true in
          while !continue do
            match input_line ic with
            | exception End_of_file -> continue := false
            | line when String.trim line = "" -> ()
            | line -> (
                incr count;
                match parse_line ~prev_lsn:!prev_lsn line with
                | Ok entries ->
                    List.iter
                      (fun ((lsn, _) as entry) ->
                        prev_lsn := lsn;
                        out := entry :: !out)
                      entries
                | Error reason ->
                    torn_or_corrupt reason;
                    continue := false)
          done;
          match !err with
          | Some e -> Error e
          | None -> Ok { l_records = List.rev !out; l_torn = !torn })

let load path = Result.map (fun l -> l.l_records) (load_ex path)

(* ------------------------------------------------------------------ *)
(* Tailing *)

(* A resumable cursor over a live log file. Each [poll] reopens the file,
   seeks to the byte just past the last complete line it consumed, and
   parses only what was appended since — so repeatedly tailing a growing
   log costs O(new records), not O(whole file) per call. Only complete
   lines (terminated by a newline) are consumed: a final line still being
   written — or torn by a writer crash — is left for the next poll rather
   than misread. A *complete* line that fails to parse, or a file that
   shrank below the cursor's position (truncation/compaction under the
   cursor), is an error: the tailer's history no longer matches the file
   and the caller must resynchronise. *)
module Tail = struct
  type cursor = {
    tc_path : string;
    mutable tc_offset : int;  (* bytes consumed (complete lines only) *)
    mutable tc_lsn : lsn;  (* records at or below this are not redelivered *)
    mutable tc_prev : lsn;  (* last parsed LSN, for monotonicity checks *)
  }

  let create ?(after = 0) path =
    { tc_path = path; tc_offset = 0; tc_lsn = after; tc_prev = 0 }

  let path c = c.tc_path
  let position c = c.tc_lsn

  let poll c =
    match open_in_bin c.tc_path with
    | exception Sys_error e -> Error e
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let size = in_channel_length ic in
            if size < c.tc_offset then
              Error
                (c.tc_path
               ^ ": log shrank under the tail cursor (truncated or compacted)")
            else if size = c.tc_offset then Ok []
            else begin
              seek_in ic c.tc_offset;
              let chunk = really_input_string ic (size - c.tc_offset) in
              match String.rindex_opt chunk '\n' with
              | None -> Ok []  (* no complete line yet *)
              | Some nl ->
                  let region = String.sub chunk 0 (nl + 1) in
                  (* [prev] stays local until the whole region parses:
                     committing it per line would leave the cursor's
                     monotonicity state ahead of [tc_offset] when a later
                     line fails, so the retrying poll would re-read the
                     same bytes and report a misleading non-monotonic-LSN
                     error instead of the original corruption. *)
                  let prev = ref c.tc_prev in
                  let rec go acc = function
                    | [] -> Ok (List.concat (List.rev acc))
                    | line :: rest ->
                        if is_blank line then go acc rest
                        else (
                          match parse_line ~prev_lsn:!prev line with
                          | Error e ->
                              Error
                                (Printf.sprintf
                                   "%s: corrupt record under tail cursor \
                                    (after LSN %d): %s"
                                   c.tc_path !prev e)
                          | Ok entries ->
                              (match List.rev entries with
                              | (l, _) :: _ -> prev := l
                              | [] -> ());
                              go
                                (List.filter (fun (l, _) -> l > c.tc_lsn)
                                   entries
                                :: acc)
                                rest)
                  in
                  (match go [] (String.split_on_char '\n' region) with
                  | Error _ as e -> e
                  | Ok records ->
                      c.tc_offset <- c.tc_offset + nl + 1;
                      c.tc_prev <- !prev;
                      (match List.rev records with
                      | (l, _) :: _ -> c.tc_lsn <- l
                      | [] -> ());
                      Ok records)
            end)
end
