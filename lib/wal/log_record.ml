module Hex = Ledger_crypto.Hex

type commit_info = {
  txn_id : int;
  commit_ts : float;
  user : string;
  block_id : int;
  ordinal : int;
  table_roots : (int * string) list;
}

type t =
  | Begin of { txn_id : int }
  | Commit of commit_info
  | Abort of { txn_id : int }
  | Checkpoint of { flushed_upto_lsn : int }
  | Data of { txn_id : int; ops : Sjson.t }
  | Ddl of { payload : Sjson.t }
  | Block_close of { block_id : int; closed_ts : float }
  | Prepare of {
      gid : string;
      txn_id : int;
      user : string;
      table_roots : (int * string) list;
    }
      (* 2PC participant vote: the transaction's DATA records are durable
         and the shard promises to commit if told to. A PREPARE with no
         later COMMIT/ABORT for the same txn_id is in-doubt — replay
         withholds its effects and surfaces the gid for resolution. *)

let to_json = function
  | Begin { txn_id } ->
      Sjson.Obj [ ("type", Sjson.String "begin"); ("txn_id", Sjson.Int txn_id) ]
  | Abort { txn_id } ->
      Sjson.Obj [ ("type", Sjson.String "abort"); ("txn_id", Sjson.Int txn_id) ]
  | Checkpoint { flushed_upto_lsn } ->
      Sjson.Obj
        [
          ("type", Sjson.String "checkpoint");
          ("flushed_upto_lsn", Sjson.Int flushed_upto_lsn);
        ]
  | Data { txn_id; ops } ->
      Sjson.Obj
        [
          ("type", Sjson.String "data");
          ("txn_id", Sjson.Int txn_id);
          ("ops", ops);
        ]
  | Ddl { payload } ->
      Sjson.Obj [ ("type", Sjson.String "ddl"); ("payload", payload) ]
  | Block_close { block_id; closed_ts } ->
      Sjson.Obj
        [
          ("type", Sjson.String "block_close");
          ("block_id", Sjson.Int block_id);
          ("closed_ts", Sjson.Float closed_ts);
        ]
  | Prepare { gid; txn_id; user; table_roots } ->
      Sjson.Obj
        [
          ("type", Sjson.String "prepare");
          ("gid", Sjson.String gid);
          ("txn_id", Sjson.Int txn_id);
          ("user", Sjson.String user);
          ( "table_roots",
            Sjson.List
              (List.map
                 (fun (tid, root) ->
                   Sjson.Obj
                     [
                       ("table_id", Sjson.Int tid);
                       ("root", Sjson.String (Hex.encode root));
                     ])
                 table_roots) );
        ]
  | Commit c ->
      Sjson.Obj
        [
          ("type", Sjson.String "commit");
          ("txn_id", Sjson.Int c.txn_id);
          ("commit_ts", Sjson.Float c.commit_ts);
          ("user", Sjson.String c.user);
          ("block_id", Sjson.Int c.block_id);
          ("ordinal", Sjson.Int c.ordinal);
          ( "table_roots",
            Sjson.List
              (List.map
                 (fun (tid, root) ->
                   Sjson.Obj
                     [
                       ("table_id", Sjson.Int tid);
                       ("root", Sjson.String (Hex.encode root));
                     ])
                 c.table_roots) );
        ]

let of_json json =
  try
    match Sjson.member "type" json with
    | Sjson.String "begin" ->
        Ok (Begin { txn_id = Sjson.get_int (Sjson.member "txn_id" json) })
    | Sjson.String "abort" ->
        Ok (Abort { txn_id = Sjson.get_int (Sjson.member "txn_id" json) })
    | Sjson.String "checkpoint" ->
        Ok
          (Checkpoint
             {
               flushed_upto_lsn =
                 Sjson.get_int (Sjson.member "flushed_upto_lsn" json);
             })
    | Sjson.String "data" ->
        Ok
          (Data
             {
               txn_id = Sjson.get_int (Sjson.member "txn_id" json);
               ops = Sjson.member "ops" json;
             })
    | Sjson.String "ddl" -> Ok (Ddl { payload = Sjson.member "payload" json })
    | Sjson.String "block_close" ->
        let closed_ts =
          match Sjson.member "closed_ts" json with
          | Sjson.Float f -> f
          | Sjson.Int i -> float_of_int i
          | _ -> failwith "closed_ts"
        in
        Ok
          (Block_close
             { block_id = Sjson.get_int (Sjson.member "block_id" json); closed_ts })
    | Sjson.String "prepare" ->
        let table_roots =
          Sjson.get_list (Sjson.member "table_roots" json)
          |> List.map (fun entry ->
                 ( Sjson.get_int (Sjson.member "table_id" entry),
                   Hex.decode (Sjson.get_string (Sjson.member "root" entry)) ))
        in
        Ok
          (Prepare
             {
               gid = Sjson.get_string (Sjson.member "gid" json);
               txn_id = Sjson.get_int (Sjson.member "txn_id" json);
               user = Sjson.get_string (Sjson.member "user" json);
               table_roots;
             })
    | Sjson.String "commit" ->
        let commit_ts =
          match Sjson.member "commit_ts" json with
          | Sjson.Float f -> f
          | Sjson.Int i -> float_of_int i
          | _ -> failwith "commit_ts"
        in
        let table_roots =
          Sjson.get_list (Sjson.member "table_roots" json)
          |> List.map (fun entry ->
                 ( Sjson.get_int (Sjson.member "table_id" entry),
                   Hex.decode (Sjson.get_string (Sjson.member "root" entry)) ))
        in
        Ok
          (Commit
             {
               txn_id = Sjson.get_int (Sjson.member "txn_id" json);
               commit_ts;
               user = Sjson.get_string (Sjson.member "user" json);
               block_id = Sjson.get_int (Sjson.member "block_id" json);
               ordinal = Sjson.get_int (Sjson.member "ordinal" json);
               table_roots;
             })
    | Sjson.String other -> Error ("unknown log record type: " ^ other)
    | _ -> Error "log record missing type field"
  with
  | Invalid_argument e | Failure e -> Error ("malformed log record: " ^ e)

let to_line t = Sjson.to_string (to_json t)

let of_line line =
  match Sjson.of_string line with
  | exception Sjson.Parse_error e -> Error e
  | json -> of_json json

let pp fmt t = Format.pp_print_string fmt (to_line t)
