(* Domain-parallel Merkle root computation.

   The level-wise pairing rule (odd trailing node promoted unchanged, as in
   Streaming/Tree) is local: the node at level L, position j depends only on
   leaves [j * 2^L, (j+1) * 2^L). Splitting the leaf array into chunks of a
   power-of-two size therefore makes every chunk an independent subtree —
   interior chunks are perfect (no promotions), and the ragged tail chunk
   reproduces exactly the promotions the sequential computation performs,
   because a level's unpaired last node is always the one covering the end
   of the array. Each domain reduces one chunk to its level-L node; the
   chunk roots are then reduced sequentially, which is the same computation
   the sequential algorithm performs from level L upward. *)

(* Below this leaf count, domain spawn overhead (~tens of us) exceeds the
   hashing work; auto mode stays sequential. *)
let auto_threshold = 2048

let rec ceil_pow2 n acc = if acc >= n then acc else ceil_pow2 n (acc * 2)

(* Level-wise reduction of leaves[lo..hi) to a single node. *)
let reduce_slice (a : string array) lo hi =
  let len = hi - lo in
  if len = 1 then a.(lo)
  else begin
    let buf = Array.sub a lo len in
    let m = ref len in
    while !m > 1 do
      let half = !m / 2 in
      for i = 0 to half - 1 do
        buf.(i) <- Streaming.combine buf.(2 * i) buf.((2 * i) + 1)
      done;
      if !m land 1 = 1 then begin
        buf.(half) <- buf.(!m - 1);
        m := half + 1
      end
      else m := half
    done;
    buf.(0)
  end

let sequential_root a =
  let n = Array.length a in
  if n = 0 then Streaming.empty_root else reduce_slice a 0 n

let root_array ?domains leaves =
  let n = Array.length leaves in
  if n = 0 then Streaming.empty_root
  else if n = 1 then leaves.(0)
  else begin
    let d =
      match domains with
      | Some d ->
          (* On a single-core host extra domains cannot run in parallel;
             they only add spawn/join and cross-domain GC overhead (the
             hashpath bench measured 137 ms at 1 domain vs 214 ms at 8 on
             one core). Ignore the request and stay sequential. *)
          if Domain.recommended_domain_count () = 1 then 1 else max 1 d
      | None ->
          (* Nested spawns from verifier worker domains would oversubscribe
             the host; only auto-parallelise from the main domain. *)
          if n < auto_threshold || not (Domain.is_main_domain ()) then 1
          else Domain.recommended_domain_count ()
    in
    let d = min d n in
    if d = 1 then sequential_root leaves
    else begin
      let per = (n + d - 1) / d in
      let chunk = ceil_pow2 per 1 in
      let nchunks = (n + chunk - 1) / chunk in
      if nchunks <= 1 then sequential_root leaves
      else begin
        let workers =
          Array.init (nchunks - 1) (fun i ->
              let i = i + 1 in
              let lo = i * chunk in
              let hi = min n (lo + chunk) in
              Domain.spawn (fun () -> reduce_slice leaves lo hi))
        in
        let subroots = Array.make nchunks "" in
        subroots.(0) <- reduce_slice leaves 0 chunk;
        Array.iteri (fun i w -> subroots.(i + 1) <- Domain.join w) workers;
        sequential_root subroots
      end
    end
  end

let root ?domains leaves = root_array ?domains (Array.of_list leaves)
