module Sha256 = Ledger_crypto.Sha256

let format_version = 1

let add_be buf width v =
  for i = width - 1 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let serialize schema row =
  (match Schema.validate_row schema row with
  | Ok () -> ()
  | Error e -> invalid_arg ("Row_codec.serialize: " ^ e));
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr format_version);
  (* The bound column count is the number of *serialized* (non-NULL)
     fields: NULLs are skipped entirely so that adding a nullable column
     leaves existing row hashes unchanged (§3.5.1), while the explicit
     ordinals of the non-NULL fields still pin their interpretation. *)
  let non_null = Array.fold_left (fun n v -> if Value.is_null v then n else n + 1) 0 row in
  add_be buf 2 non_null;
  Array.iteri
    (fun i v ->
      if not (Value.is_null v) then begin
        let col = Schema.column schema i in
        let payload = Value.encode col.Column.dtype v in
        add_be buf 2 i;
        add_be buf 1 (Datatype.tag col.Column.dtype);
        add_be buf 4 (Datatype.param col.Column.dtype);
        add_be buf 4 (String.length payload);
        Buffer.add_string buf payload
      end)
    row;
  Buffer.contents buf

let hash schema row = Sha256.digest_string (serialize schema row)

(* The closure-free twin of Schema.validate_row, for the allocation-free
   hash path below. *)
let validate_for_hash schema row =
  let n = Schema.arity schema in
  if Array.length row <> n then
    invalid_arg
      (Printf.sprintf "Row_codec.hash_into: arity mismatch: expected %d values, got %d"
         n (Array.length row));
  for i = 0 to n - 1 do
    let col = Schema.column schema i in
    let v = Array.unsafe_get row i in
    if Value.is_null v then begin
      if not col.Column.nullable then
        invalid_arg
          ("Row_codec.hash_into: column " ^ col.Column.name ^ " is NOT NULL")
    end
    else if not (Value.conforms col.Column.dtype v) then
      invalid_arg
        ("Row_codec.hash_into: value does not conform to column "
        ^ col.Column.name)
  done

let count_non_null row =
  let n = Array.length row in
  let rec go i acc =
    if i = n then acc
    else go (i + 1) (if Value.is_null (Array.unsafe_get row i) then acc else acc + 1)
  in
  go 0 0

(* Streams the serialization of [serialize] directly into [ctx] — identical
   bytes, no Buffer, no intermediate payload strings. The only allocation is
   the returned 32-byte digest. *)
let hash_into ctx schema row =
  validate_for_hash schema row;
  Sha256.reset ctx;
  Sha256.feed_byte ctx format_version;
  Sha256.feed_be ctx ~width:2 (count_non_null row);
  let n = Array.length row in
  for i = 0 to n - 1 do
    let v = Array.unsafe_get row i in
    if not (Value.is_null v) then begin
      let col = Schema.column schema i in
      let dtype = col.Column.dtype in
      Sha256.feed_be ctx ~width:2 i;
      Sha256.feed_be ctx ~width:1 (Datatype.tag dtype);
      Sha256.feed_be ctx ~width:4 (Datatype.param dtype);
      Sha256.feed_be ctx ~width:4 (Value.encoded_length dtype v);
      Value.encode_into dtype v ctx
    end
  done;
  let out = Bytes.create 32 in
  Sha256.finish_into ctx out ~off:0;
  Bytes.unsafe_to_string out

type field = { ordinal : int; tag : int; param : int; payload : string }

let inspect s =
  let pos = ref 0 in
  let len = String.length s in
  let read_be width =
    if !pos + width > len then raise Exit;
    let v = ref 0 in
    for _ = 1 to width do
      v := (!v lsl 8) lor Char.code s.[!pos];
      incr pos
    done;
    !v
  in
  try
    let version = read_be 1 in
    if version <> format_version then raise Exit;
    let count = read_be 2 in
    let fields = ref [] in
    while !pos < len do
      let ordinal = read_be 2 in
      let tag = read_be 1 in
      let param = read_be 4 in
      let payload_len = read_be 4 in
      if !pos + payload_len > len then raise Exit;
      let payload = String.sub s !pos payload_len in
      pos := !pos + payload_len;
      fields := { ordinal; tag; param; payload } :: !fields
    done;
    Some (count, List.rev !fields)
  with Exit -> None
