(** Runtime values held in rows.

    Integer-family values share the OCaml [int] representation but are
    distinguished by the column's {!Datatype.t} at serialization time, which
    is exactly what makes the metadata-swap attack of paper §3.2 detectable:
    the same payload serialized under a different declared type yields a
    different hash. *)

type t =
  | Null
  | Int of int
  | Bool of bool
  | Float of float
  | String of string
  | Datetime of float

val is_null : t -> bool

val conforms : Datatype.t -> t -> bool
(** Whether the value may be stored in a column of the given type: the
    constructor family matches, integers fit the declared width, strings fit
    the declared maximum length. [Null] conforms to every type (nullability
    is checked at the column level). *)

val compare : t -> t -> int
(** Total order used by indexes and ORDER BY: Null sorts first; values of
    different constructors order by constructor; ints and floats compare
    numerically against each other. *)

val equal : t -> t -> bool

val encode : Datatype.t -> t -> string
(** Binary payload for the serialization format: fixed-width big-endian
    two's complement for the integer family (2/4/8 bytes per declared type),
    1 byte for booleans, IEEE bits for floats and datetimes, raw bytes for
    strings. Raises [Invalid_argument] on [Null] or non-conforming values. *)

val encoded_length : Datatype.t -> t -> int
(** Length in bytes of {!encode}'s payload, without building it. Same errors
    as {!encode}. *)

val encode_into : Datatype.t -> t -> Ledger_crypto.Sha256.t -> unit
(** Feed exactly the bytes of {!encode} into a SHA-256 context, without
    building the payload string. Allocation-free for every type but [Float]/
    [Datetime] (whose boxed bit conversion may allocate). Same errors as
    {!encode}. *)

val tagged_encode : t -> string
(** Self-describing encoding (constructor tag, length, payload) that does
    not require a declared column type. This is the serialization behind the
    [LEDGERHASH] intrinsic used for transaction entries and blocks, where
    the hashed fields are system-defined rather than user columns. *)

val tagged_feed : Ledger_crypto.Sha256.t -> t -> unit
(** Feed exactly the bytes of {!tagged_encode} into a SHA-256 context,
    without building the intermediate string. *)

val to_string : t -> string
(** Display rendering (used by views and the CLI). *)

val to_json : t -> Sjson.t
val of_json : Datatype.t -> Sjson.t -> t option

val to_tagged_json : t -> Sjson.t
(** Self-describing JSON ({["i"]}, ["f"], ["b"], ["s"], ["d"] tags) that
    round-trips without a declared column type — the redo-log encoding. *)

val of_tagged_json : Sjson.t -> t option

val pp : Format.formatter -> t -> unit

(** {1 Constructors} *)

val int : int -> t
val string : string -> t
val bool : bool -> t
val float : float -> t
val datetime : float -> t
val null : t
