(* Replication stream messages (protocol v1).

   After a [Subscribe] request is accepted, the connection stops being
   request/response and becomes a stream: the primary pushes [Batch] and
   [Heartbeat] frames, the replica answers with [Ack] frames. Every
   message still travels inside an SLW1 frame; the payload is one JSON
   object discriminated by a "repl" field, so a stream frame can never be
   confused with a request/response envelope (those carry "req"/"resp").

   A batch reuses the WAL's batch-frame discipline: the CRC-32 covers
   every record in the batch (LSN and payload line, in order), so a
   corrupted or reordered batch is rejected as one unit — the replica
   never applies a damaged prefix. *)

module LR = Aries.Log_record

type msg =
  | Batch of { records : (Aries.Wal.lsn * LR.t) list }
  | Heartbeat of { last_lsn : Aries.Wal.lsn }
      (** keep-alive when the log is idle; also tells the replica the
          primary's position so an empty stream is distinguishable from a
          stalled one *)
  | Ack of { last_lsn : Aries.Wal.lsn; replicated_upto : float }
      (** replica -> primary: everything up to [last_lsn] is durable on
          the replica, whose last applied commit timestamp is
          [replicated_upto] — the probe §3.6's digest gate consumes *)

(* CRC over the batch body exactly as the records will be interpreted:
   "LSN payload\n" per record. *)
let batch_crc pairs =
  Fault.Crc32.finish
    (List.fold_left
       (fun crc (lsn, line) ->
         Fault.Crc32.update_char
           (Fault.Crc32.update_string
              (Fault.Crc32.update_char
                 (Fault.Crc32.update_string crc (string_of_int lsn))
                 ' ')
              line)
           '\n')
       Fault.Crc32.init pairs)

let encode_batch records =
  let pairs =
    List.map (fun (lsn, r) -> (lsn, Sjson.to_string (LR.to_json r))) records
  in
  Sjson.to_string
    (Sjson.Obj
       [
         ("repl", Sjson.String "batch");
         ("crc", Sjson.String (Printf.sprintf "%08lx" (batch_crc pairs)));
         ( "records",
           Sjson.List
             (List.map
                (fun (lsn, line) ->
                  Sjson.List [ Sjson.Int lsn; Sjson.String line ])
                pairs) );
       ])

let encode_heartbeat ~last_lsn =
  Sjson.to_string
    (Sjson.Obj
       [ ("repl", Sjson.String "heartbeat"); ("last_lsn", Sjson.Int last_lsn) ])

let encode_ack ~last_lsn ~replicated_upto =
  Sjson.to_string
    (Sjson.Obj
       [
         ("repl", Sjson.String "ack");
         ("last_lsn", Sjson.Int last_lsn);
         ("replicated_upto", Sjson.Float replicated_upto);
       ])

let ( let* ) = Result.bind

let int_member name obj =
  match Sjson.member name obj with
  | Sjson.Int i -> Ok i
  | _ -> Error (Printf.sprintf "stream message missing int field %S" name)

let decode_batch obj =
  let* pairs =
    match Sjson.member "records" obj with
    | Sjson.List items ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Sjson.List [ Sjson.Int lsn; Sjson.String line ] :: rest ->
              go ((lsn, line) :: acc) rest
          | _ -> Error "batch record must be an [lsn, payload] pair"
        in
        go [] items
    | _ -> Error "batch missing records"
  in
  let* () =
    match Sjson.member "crc" obj with
    | Sjson.String s -> (
        match Int32.of_string_opt ("0x" ^ s) with
        | Some crc when crc = batch_crc pairs -> Ok ()
        | Some _ -> Error "batch checksum mismatch"
        | None -> Error "bad batch checksum field")
    | _ -> Error "batch missing checksum"
  in
  let rec decode acc = function
    | [] -> Ok (Batch { records = List.rev acc })
    | (lsn, line) :: rest -> (
        match LR.of_line line with
        | Ok r -> decode ((lsn, r) :: acc) rest
        | Error e -> Error e)
  in
  decode [] pairs

let decode payload =
  match Sjson.of_string payload with
  | exception Sjson.Parse_error e -> Error ("stream payload is not JSON: " ^ e)
  | obj -> (
      match Sjson.member "repl" obj with
      | Sjson.String "batch" -> decode_batch obj
      | Sjson.String "heartbeat" ->
          let* last_lsn = int_member "last_lsn" obj in
          Ok (Heartbeat { last_lsn })
      | Sjson.String "ack" ->
          let* last_lsn = int_member "last_lsn" obj in
          let replicated_upto =
            match Sjson.member "replicated_upto" obj with
            | Sjson.Float f -> f
            | Sjson.Int i -> float_of_int i
            | _ -> 0.
          in
          Ok (Ack { last_lsn; replicated_upto })
      | Sjson.String other -> Error ("unknown stream message " ^ other)
      | _ -> Error "missing stream discriminator \"repl\"")
