(* Primary-side replication registry (paper §3.6).

   One entry per replica identity (the stable [replica_id] carried in
   Subscribe, not the TCP session): a replica that reconnects resumes its
   entry, bumping its connect counter, instead of spawning a fresh one —
   otherwise every reconnect would leave behind a stale entry pinning the
   digest gate forever.

   The gate itself is [replicated_upto]: the minimum acked commit
   timestamp across every replica ever registered. Until the first
   replica registers it is [infinity] (a single-node deployment issues
   digests unimpeded); once a replica is known it stays in the minimum
   even while disconnected — a crashed or lagging secondary must *block*
   digest issuance, not silently drop out of the gate, because a digest
   covering data the secondary never received is exactly what §3.6
   forbids. *)

type entry = {
  e_id : string;  (* stable replica identity *)
  mutable e_peer : string;  (* latest session user, informational *)
  mutable e_last_lsn : Aries.Wal.lsn;  (* highest LSN acked as durable *)
  mutable e_upto : float;  (* acked replicated_upto (commit ts) *)
  mutable e_bytes : int;  (* payload bytes shipped, lifetime *)
  mutable e_connected : bool;
  mutable e_connects : int;  (* subscriptions, incl. the first *)
  mutable e_last_ack : float;  (* wall-clock time of the last ack *)
  mutable e_epoch : int;
      (* bumped on every (re)registration; a feeder holding an older
         epoch has been superseded and must stand down (see [current]) *)
}

type t = {
  m : Mutex.t;
  mutable entries : entry list;
  last_lsn : unit -> Aries.Wal.lsn;  (* primary log position, for lag *)
  last_commit_ts : unit -> float;  (* primary commit clock, for lag *)
}

let create ~last_lsn ~last_commit_ts =
  { m = Mutex.create (); entries = []; last_lsn; last_commit_ts }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Returns the entry plus the epoch of this registration (read under the
   same lock that bumped it, so concurrent re-registrations of one
   identity get distinct epochs). Exactly one feeder — the holder of the
   entry's latest epoch — is the live one; any other must exit without
   touching the entry's connection state. *)
let register t ~id ~peer ~from_lsn =
  with_lock t (fun () ->
      match List.find_opt (fun e -> e.e_id = id) t.entries with
      | Some e ->
          e.e_peer <- peer;
          e.e_last_lsn <- from_lsn;
          e.e_connected <- true;
          e.e_connects <- e.e_connects + 1;
          e.e_epoch <- e.e_epoch + 1;
          (e, e.e_epoch)
      | None ->
          let e =
            {
              e_id = id;
              e_peer = peer;
              e_last_lsn = from_lsn;
              e_upto = 0.;
              e_bytes = 0;
              e_connected = true;
              e_connects = 1;
              e_last_ack = 0.;
              e_epoch = 1;
            }
          in
          t.entries <- e :: t.entries;
          (e, 1))

(* Is [epoch] still the entry's latest registration? A feeder polls this
   each loop turn and stands down once a newer subscription for the same
   replica identity has taken the entry over. *)
let current t e ~epoch = with_lock t (fun () -> e.e_epoch = epoch)

(* Marks the entry disconnected only if [epoch] is still current: a
   superseded feeder exiting must not shadow the live session's state. *)
let disconnect t e ~epoch =
  with_lock t (fun () -> if e.e_epoch = epoch then e.e_connected <- false)

let ack t e ~last_lsn ~upto =
  with_lock t (fun () ->
      if last_lsn > e.e_last_lsn then e.e_last_lsn <- last_lsn;
      if upto > e.e_upto then e.e_upto <- upto;
      e.e_last_ack <- Unix.gettimeofday ())

let add_bytes t e n = with_lock t (fun () -> e.e_bytes <- e.e_bytes + n)

let replicated_upto t =
  with_lock t (fun () ->
      List.fold_left (fun acc e -> Float.min acc e.e_upto) infinity t.entries)

let replica_count t = with_lock t (fun () -> List.length t.entries)

let connected_count t =
  with_lock t (fun () ->
      List.length (List.filter (fun e -> e.e_connected) t.entries))

(* Prometheus-like lines merged into the server's Stats/SIGUSR1 dump. *)
let lines t =
  with_lock t (fun () ->
      let primary_lsn = t.last_lsn () in
      let primary_ts = t.last_commit_ts () in
      let out = ref [] in
      let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
      add "sqlledger_replicas_known %d" (List.length t.entries);
      add "sqlledger_replicas_connected %d"
        (List.length (List.filter (fun e -> e.e_connected) t.entries));
      List.iter
        (fun e ->
          add "sqlledger_replica_connected{replica=%S} %d" e.e_id
            (if e.e_connected then 1 else 0);
          add "sqlledger_replica_connects_total{replica=%S} %d" e.e_id
            e.e_connects;
          add "sqlledger_replica_acked_lsn{replica=%S} %d" e.e_id e.e_last_lsn;
          add "sqlledger_replica_lag_records{replica=%S} %d" e.e_id
            (max 0 (primary_lsn - e.e_last_lsn));
          add "sqlledger_replica_lag_seconds{replica=%S} %.3f" e.e_id
            (if primary_ts = 0. then 0.
             else Float.max 0. (primary_ts -. e.e_upto));
          add "sqlledger_replica_bytes_shipped_total{replica=%S} %d" e.e_id
            e.e_bytes)
        (List.sort (fun a b -> String.compare a.e_id b.e_id) t.entries);
      List.rev !out)
