(* Replica-side subscription client: the daemon half of streaming
   replication.

   A replica directory mirrors a primary directory's layout —
   [snapshot.json] + [wal.jsonl] — plus a [replica.json] marker recording
   which primary it replicates and its stable replica identity. The
   marker is what keeps the roles honest: `sqlledger serve` refuses a
   marked directory (serving writes from a replica copy would fork
   history), and `sqlledger promote` is the only operation that removes
   it.

   The apply path is durable-then-ack: each received batch is appended to
   the local WAL copy and fsynced *before* the ack goes back, so an acked
   LSN survives a replica crash and the primary's §3.6 digest gate never
   trusts state the replica could lose. Applying to the in-memory replica
   and appending to the local log happen under the caller-provided
   [with_write] (the read-serving side's writer lock), so readers never
   observe a half-applied batch.

   Reconnection is capped exponential backoff; every successful
   subscription resets it. A subscription answered with [Snapshot_r]
   (the primary compacted or restarted past our position) installs the
   shipped snapshot wholesale, persists it, and restarts the local log at
   the snapshot's LSN. *)

open Sql_ledger
module Frame = Wire.Frame
module Protocol = Wire.Protocol

let point_apply = "repl.apply"
let point_ack = "repl.ack"

let () =
  Fault.register point_apply;
  Fault.register point_ack

(* Snapshot frames can dwarf the request/response default. *)
let stream_max_frame = 1 lsl 30

(* Whole-frame bound on every stream read. The primary heartbeats every
   couple of seconds, so 30 s of silence — or a frame started but never
   finished — means the link is dead or a middlebox is sitting on the
   bytes; tear down and let the backoff loop resubscribe instead of
   blocking forever (which would also wedge the daemon's shutdown join). *)
let stream_read_timeout = 30.0

let state_file = "replica.json"
let state_path dir = Filename.concat dir state_file
let is_replica_dir dir = Sys.file_exists (state_path dir)

type t = {
  c_host : string;
  c_port : int;
  c_dir : string;
  c_id : string;
  c_clock : unit -> float;
  c_replica : Replica.t;
  mutable c_wal : Aries.Wal.t;  (* local durable log copy *)
  c_stop : bool Atomic.t;
  backoff_min : float;
  backoff_max : float;
  (* Counters below are written by the run thread and read by metrics
     renderers; word-sized torn-free reads are all the latter needs. *)
  mutable c_connected : bool;
  mutable c_reconnects : int;
  mutable c_bytes : int;
  mutable c_last_error : string;
}

let id t = t.c_id
let dir t = t.c_dir
let primary t = Printf.sprintf "%s:%d" t.c_host t.c_port
let database t = Replica.database t.c_replica
let last_lsn t = Replica.last_lsn t.c_replica
let replicated_upto t = Replica.replicated_upto t.c_replica
let connected t = t.c_connected
let last_error t = t.c_last_error
let stop t = Atomic.set t.c_stop true
let stopped t = Atomic.get t.c_stop
let sync t = Aries.Wal.sync t.c_wal

let metric_lines t =
  [
    Printf.sprintf "sqlledger_repl_client_connected %d"
      (if t.c_connected then 1 else 0);
    Printf.sprintf "sqlledger_repl_client_last_lsn %d" (last_lsn t);
    Printf.sprintf "sqlledger_repl_client_replicated_upto %.6f"
      (replicated_upto t);
    Printf.sprintf "sqlledger_repl_client_bytes_received_total %d" t.c_bytes;
    Printf.sprintf "sqlledger_repl_client_reconnects_total %d" t.c_reconnects;
  ]

(* ------------------------------------------------------------------ *)
(* Directory state *)

let fresh_id dirname =
  Printf.sprintf "%s-%08lx"
    (Filename.basename dirname)
    (Fault.Crc32.string
       (Printf.sprintf "%s:%d:%.6f" dirname (Unix.getpid ())
          (Unix.gettimeofday ())))

let write_state ~dir ~primary ~id =
  let contents =
    Sjson.to_string ~pretty:true
      (Sjson.Obj
         [ ("replica_of", Sjson.String primary); ("id", Sjson.String id) ])
  in
  Out_channel.with_open_bin (state_path dir) (fun oc ->
      Out_channel.output_string oc contents;
      Out_channel.output_string oc "\n")

let read_state dir =
  match In_channel.with_open_bin (state_path dir) In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
      match Sjson.of_string text with
      | exception Sjson.Parse_error e -> Error (state_path dir ^ ": " ^ e)
      | json -> (
          match
            (Sjson.member "replica_of" json, Sjson.member "id" json)
          with
          | Sjson.String p, Sjson.String i -> Ok (p, i)
          | _ -> Error (state_path dir ^ ": malformed replica state")))

(* Rewrite the local log without its torn tail so reopening in append
   mode cannot write after garbage. *)
let rewrite_wal path records =
  let w = Aries.Wal.create ~path ~sync_commits:false () in
  List.iter
    (fun (lsn, r) ->
      Aries.Wal.advance_to w (lsn - 1);
      ignore (Aries.Wal.append w r : Aries.Wal.lsn))
    records;
  Aries.Wal.sync w;
  Aries.Wal.close w

(* Rebuild the in-memory replica from the directory's durable copy:
   newest usable snapshot generation (if any) plus the local log tail —
   the same recovery shape [Durable.open_dir] uses for a primary. *)
let build_replica ~clock ~dir records =
  let snap = Durable.snapshot_path dir in
  let min_lsn = match records with (l, _) :: _ -> Some l | [] -> None in
  let snapshot =
    List.find_map
      (fun path ->
        if not (Sys.file_exists path) then None
        else
          match Snapshot.read_file path with
          | Error _ -> None
          | Ok json -> (
              match min_lsn with
              | Some l when Snapshot.wal_lsn json < l - 1 -> None
              | _ -> Some json))
      [ snap; snap ^ ".tmp"; snap ^ ".prev" ]
  in
  match snapshot with
  | Some json -> (
      match Snapshot.load ~clock json with
      | Error e -> Error e
      | Ok db ->
          let rep =
            Replica.of_database ~clock ~last_lsn:(Snapshot.wal_lsn json) db
          in
          Result.map (fun () -> rep) (Replica.feed rep records))
  | None -> (
      match min_lsn with
      | Some l when l > 1 ->
          Error
            (Printf.sprintf
               "%s: local log starts at LSN %d with no usable snapshot \
                behind it"
               dir l)
      | _ ->
          let rep = Replica.create ~clock () in
          Result.map (fun () -> rep) (Replica.feed rep records))

let open_dir ?(clock = Unix.gettimeofday) ?(backoff_min = 0.1)
    ?(backoff_max = 5.0) ~primary_host ~primary_port ~dir () =
  let primary = Printf.sprintf "%s:%d" primary_host primary_port in
  Fault.Fsutil.mkdir_p dir;
  let wal_path = Durable.wal_path dir in
  let has_data =
    Sys.file_exists wal_path || Sys.file_exists (Durable.snapshot_path dir)
  in
  let ( let* ) = Result.bind in
  let* id =
    if is_replica_dir dir then
      let* recorded, id = read_state dir in
      if recorded <> primary then
        Error
          (Printf.sprintf "%s replicates %s, not %s" dir recorded primary)
      else Ok id
    else if has_data then
      Error
        (dir
       ^ ": looks like a primary data directory (no " ^ state_file
       ^ "); refusing to overwrite it with a replica")
    else begin
      let id = fresh_id dir in
      write_state ~dir ~primary ~id;
      Ok id
    end
  in
  let* records =
    if Sys.file_exists wal_path then
      match Aries.Wal.load_ex wal_path with
      | Error e -> Error e
      | Ok { Aries.Wal.l_records; l_torn } ->
          if l_torn then rewrite_wal wal_path l_records;
          Ok l_records
    else Ok []
  in
  let* replica = build_replica ~clock ~dir records in
  let wal =
    Aries.Wal.create ~path:wal_path ~append:true
      ~first_lsn:(Replica.last_lsn replica + 1)
      ~sync_commits:false ()
  in
  Ok
    {
      c_host = primary_host;
      c_port = primary_port;
      c_dir = dir;
      c_id = id;
      c_clock = clock;
      c_replica = replica;
      c_wal = wal;
      c_stop = Atomic.make false;
      backoff_min;
      backoff_max;
      c_connected = false;
      c_reconnects = 0;
      c_bytes = 0;
      c_last_error = "";
    }

(* ------------------------------------------------------------------ *)
(* Streaming *)

let send_ack t conn =
  Fault.trip point_ack;
  Frame.send conn
    (Stream.encode_ack ~last_lsn:(last_lsn t)
       ~replicated_upto:(replicated_upto t))

(* Install a snapshot shipped by the primary: replace the in-memory
   replica, persist the snapshot (atomic, previous generation kept), and
   restart the local log at the snapshot's position. *)
let install_snapshot t ~with_write json ~last_lsn:snap_lsn =
  match Snapshot.load ~clock:t.c_clock json with
  | Error e -> Error ("shipped snapshot rejected: " ^ e)
  | Ok db ->
      with_write (fun () ->
          (* Durability and the WAL swap first; flipping the replica's
             [last_lsn] is the step a catch-up poller keys on, so it must
             come last — otherwise a reader that sees the new position
             can still be served the pre-install state for as long as the
             snapshot write to disk takes. *)
          Snapshot.save_to_file db ~path:(Durable.snapshot_path t.c_dir);
          Aries.Wal.close t.c_wal;
          t.c_wal <-
            Aries.Wal.create ~path:(Durable.wal_path t.c_dir)
              ~first_lsn:(snap_lsn + 1) ~sync_commits:false ();
          Replica.install_snapshot t.c_replica db ~last_lsn:snap_lsn);
      Ok ()

type subscribe_outcome =
  | Stream_open of Frame.conn
  | Retry of string  (* transient: back off and reconnect *)
  | Fatal of string  (* divergence/misconfiguration: stop the daemon *)

let subscribe t ~with_write =
  match
    Wire.Client.connect
      ~client:(Printf.sprintf "replica:%s" t.c_id)
      ~host:t.c_host ~port:t.c_port ()
  with
  | Error (Wire.Client.Mismatch m) -> Fatal m
  | Error e -> Retry (Wire.Client.connect_error_to_string e)
  | Ok cl -> (
      let conn = cl.Wire.Client.conn in
      let fail outcome =
        Frame.close conn;
        outcome
      in
      match
        Frame.send conn
          (Protocol.encode_request ~id:1
             (Protocol.Subscribe
                { from_lsn = last_lsn t; replica_id = t.c_id }))
      with
      | exception (Sys_error _ | Unix.Unix_error _) ->
          fail (Retry "subscribe send failed")
      | () -> (
          match
            Frame.recv ~max_frame:stream_max_frame
              ~read_timeout:stream_read_timeout conn
          with
          | exception Unix.Unix_error (err, _, _) ->
              fail (Retry (Unix.error_message err))
          | Frame.Eof | Frame.Truncated ->
              fail (Retry "primary closed during subscribe")
          | Frame.Junk _ -> fail (Retry "stream desynchronised")
          | Frame.Oversized { size; limit } ->
              fail
                (Fatal
                   (Printf.sprintf "snapshot frame too large (%d > %d)" size
                      limit))
          | Frame.Frame payload -> (
              match Protocol.decode_response payload with
              | Error e -> fail (Retry ("malformed subscribe reply: " ^ e))
              | Ok (_, Protocol.Subscribed _) -> Stream_open conn
              | Ok (_, Protocol.Snapshot_r { snapshot; last_lsn }) -> (
                  match install_snapshot t ~with_write snapshot ~last_lsn with
                  | Ok () -> Stream_open conn
                  | Error e -> fail (Fatal e))
              | Ok
                  ( _,
                    Protocol.Error_r
                      {
                        code =
                          ( Protocol.Busy | Protocol.Shutting_down
                          | Protocol.Overloaded );
                        message;
                        _;
                      } ) ->
                  fail (Retry message)
              | Ok (_, Protocol.Error_r { message; _ }) -> fail (Fatal message)
              | Ok (_, _) -> fail (Retry "unexpected reply to subscribe"))))

(* A network that eats whole frames (half-duplex link failure, a chaos
   proxy's Drop) leaves a hole in the LSN sequence that [Replica.feed]
   would otherwise advance straight over — silent divergence. Refuse the
   batch instead and tear the connection: resubscribing from the
   persisted LSN redelivers the missing records. Records at or below the
   local WAL head are redelivery and exempt; the fresh suffix must start
   exactly one past the head and stay consecutive. *)
let check_contiguous t records =
  let last = Aries.Wal.last_lsn t.c_wal in
  let rec go expected = function
    | [] -> Ok ()
    | (lsn, _) :: rest when lsn <= last && expected = None -> go None rest
    | (lsn, _) :: rest ->
        let want = match expected with None -> last + 1 | Some e -> e in
        if lsn = want then go (Some (lsn + 1)) rest
        else
          Error
            (Printf.sprintf "stream gap: expected lsn %d, got %d" want lsn)
  in
  go None records

(* Apply one batch: local WAL first (durable), then the in-memory
   replica, then ack. Records the replica already holds are skipped by
   [Replica.feed], so redelivery after a reconnect is harmless. *)
let apply_batch t ~with_write records payload_bytes =
  Fault.trip point_apply;
  let result = ref (Ok ()) in
  with_write (fun () ->
      List.iter
        (fun (lsn, r) ->
          if lsn > Aries.Wal.last_lsn t.c_wal then begin
            Aries.Wal.advance_to t.c_wal (lsn - 1);
            ignore (Aries.Wal.append t.c_wal r : Aries.Wal.lsn)
          end)
        records;
      Aries.Wal.sync t.c_wal;
      result := Replica.feed t.c_replica records);
  match !result with
  | Error e -> Error ("replication apply failed: " ^ e)
  | Ok () ->
      t.c_bytes <- t.c_bytes + payload_bytes;
      Ok ()

(* Pump the stream until the connection tears, the daemon is stopped, or
   the apply path fails (fatal: the replica's history no longer lines up
   with the primary's). *)
let stream_loop t conn ~with_write =
  let fatal = ref None in
  let closing = ref false in
  (* An ack lost to a dying connection (EPIPE with SIGPIPE ignored, the
     primary crashing between delivering a frame and our reply) is a
     teardown, not a daemon-killing failure: note it and let the backoff
     loop resubscribe. Injected faults ([repl.ack]) keep propagating —
     they model a replica crash, which [run] turns into a stop. *)
  let ack () =
    try send_ack t conn
    with Sys_error _ | Unix.Unix_error _ -> closing := true
  in
  while not (!closing || Atomic.get t.c_stop) do
    if Frame.poll conn 0.2 then
      match
        Frame.recv ~max_frame:stream_max_frame
          ~read_timeout:stream_read_timeout conn
      with
      | Frame.Frame payload -> (
          match Stream.decode payload with
          | Ok (Stream.Batch { records }) -> (
              match check_contiguous t records with
              | Error e ->
                  (* A hole means the wire lost frames, not that our
                     history diverged: tear and resubscribe from the
                     persisted LSN, which redelivers the gap. *)
                  t.c_last_error <- e;
                  closing := true
              | Ok () -> (
                  match
                    apply_batch t ~with_write records (String.length payload)
                  with
                  | Ok () -> ack ()
                  | Error e ->
                      fatal := Some e;
                      closing := true))
          | Ok (Stream.Heartbeat { last_lsn = shipped }) ->
              (* The heartbeat carries the primary's shipped high-water
                 mark for THIS connection, and TCP delivers in order: a
                 heartbeat above our applied LSN proves batch frames
                 sent before it were eaten by the wire — the connection
                 itself is alive, so only resubscribing (from the
                 persisted LSN) gets them redelivered. Without this
                 check a lossy-but-unbroken link parks the replica
                 behind the primary forever, acking an LSN it will
                 never advance. *)
              if shipped > last_lsn t then begin
                t.c_last_error <-
                  Printf.sprintf
                    "stream lost records: primary shipped to %d, applied %d"
                    shipped (last_lsn t);
                closing := true
              end
              else ack ()
          | Ok (Stream.Ack _) -> ()  (* not ours to receive; ignore *)
          | Error e ->
              (* Corruption the CRC exists to catch is a network fault,
                 not divergence: reconnect and take redelivery rather
                 than killing the daemon. *)
              t.c_last_error <- "bad stream frame: " ^ e;
              closing := true)
      | Frame.Eof | Frame.Truncated | Frame.Junk _ | Frame.Oversized _ ->
          closing := true
      | exception (Sys_error _ | Unix.Unix_error _) -> closing := true
  done;
  !fatal

(* Interruptible sleep: honour [stop] promptly even mid-backoff. *)
let rec snooze t seconds =
  if seconds > 0. && not (Atomic.get t.c_stop) then begin
    Thread.delay (Float.min 0.1 seconds);
    snooze t (seconds -. 0.1)
  end

(* Reconnect delay as a pure function of (seed, attempt): full jitter
   over the capped-exponential ceiling min(max, min * 2^attempt). Two
   replicas orphaned by the same primary crash share the attempt number
   but not the seed, so their resubscribe storms spread out instead of
   landing on the recovering primary in lock-step — and a test can prove
   it without clocks, by comparing the two schedules directly. The hash
   is splitmix64 of seed + attempt. *)
let backoff_delay ~seed ~attempt ~backoff_min ~backoff_max =
  let open Int64 in
  let z =
    add (of_int seed) (mul (of_int (attempt + 1)) 0x9E3779B97F4A7C15L)
  in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  let u = Int64.to_float (shift_right_logical z 11) /. 9007199254740992.0 in
  let cap =
    Float.min backoff_max (backoff_min *. (2. ** float_of_int attempt))
  in
  u *. cap

(* The daemon loop: subscribe, stream, reconnect with jittered capped
   exponential backoff across primary restarts (seeded by the replica's
   stable identity, so each replica follows its own schedule). Injected
   faults ([repl.apply] / [repl.ack]) behave like a replica crash: the
   loop stops with the durable directory left behind for a restart to
   resume from. *)
let run t ~with_write =
  let seed = Int32.to_int (Fault.Crc32.string t.c_id) in
  let attempt = ref 0 in
  let first = ref true in
  while not (Atomic.get t.c_stop) do
    if not !first then begin
      t.c_reconnects <- t.c_reconnects + 1;
      snooze t
        (backoff_delay ~seed ~attempt:!attempt ~backoff_min:t.backoff_min
           ~backoff_max:t.backoff_max);
      if !attempt < 62 then incr attempt
    end;
    first := false;
    if not (Atomic.get t.c_stop) then begin
      match subscribe t ~with_write with
      | Retry e -> t.c_last_error <- e
      | Fatal e ->
          t.c_last_error <- e;
          Atomic.set t.c_stop true
      | Stream_open conn ->
          t.c_connected <- true;
          attempt := 0;
          let fatal =
            try stream_loop t conn ~with_write with
            | Fault.Injected_error _ | Fault.Injected_crash _ ->
                Atomic.set t.c_stop true;
                Some "injected replica crash"
            | e ->
                (* Catch-all: an unexpected exception must not kill the
                   daemon silently with [c_connected] stuck true — record
                   it and fall back to the reconnect/backoff path. *)
                t.c_last_error <- Printexc.to_string e;
                None
          in
          t.c_connected <- false;
          Frame.close conn;
          (match fatal with
          | Some e ->
              t.c_last_error <- e;
              Atomic.set t.c_stop true
          | None -> ())
    end
  done;
  t.c_connected <- false;
  Aries.Wal.sync t.c_wal

let close t =
  Aries.Wal.sync t.c_wal;
  Aries.Wal.close t.c_wal

(* ------------------------------------------------------------------ *)
(* Failover *)

(* Turn a replica directory into a servable primary: recover it exactly
   as a primary would (snapshot + local log tail — [Durable.open_dir]
   re-homes the state and restarts the log), then drop the replica
   marker. The marker is removed only after recovery succeeds, so a
   promotion interrupted by a crash is simply retried. Everything the
   replica acked is durable here; what is lost is the primary's unshipped
   tail — the §3.6 loss window the digest gate exists to bound. *)
let promote_dir ?clock ~dir () =
  if not (is_replica_dir dir) then
    Error (dir ^ ": not a replica directory (no " ^ state_file ^ ")")
  else
    match
      Durable.open_dir ?clock ~dir ~name:(Filename.basename dir) ()
    with
    | Error e -> Error e
    | Ok durable ->
        Database.refresh_counters (Durable.db durable);
        (try Sys.remove (state_path dir) with Sys_error _ -> ());
        Ok durable
