type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

(* Compact form straight into a caller-supplied buffer: the WAL serialises
   one record per committed transaction and reuses a single buffer across
   appends rather than building a fresh string each time. *)
let write buf v =
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_string buf k;
            Buffer.add_char buf ':';
            go item)
          fields;
        Buffer.add_char buf '}'
  in
  go v

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let indent n =
    if pretty then begin
      Buffer.add_char buf '\n';
      for _ = 1 to n do
        Buffer.add_string buf "  "
      done
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            go (depth + 1) item)
          items;
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape_string buf k;
            Buffer.add_char buf ':';
            if pretty then Buffer.add_char buf ' ';
            go (depth + 1) item)
          fields;
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

type parser_state = { input : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st =
  if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue := false
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_literal st lit value =
  let n = String.length lit in
  if
    st.pos + n <= String.length st.input
    && String.sub st.input st.pos n = lit
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected '%s'" lit)

let parse_hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> fail st "invalid \\u escape"
        in
        v := (!v * 16) + d
    | None -> fail st "unterminated \\u escape");
    advance st
  done;
  !v

(* Encode a Unicode code point as UTF-8 into [buf]. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'; advance st
        | Some '\\' -> Buffer.add_char buf '\\'; advance st
        | Some '/' -> Buffer.add_char buf '/'; advance st
        | Some 'n' -> Buffer.add_char buf '\n'; advance st
        | Some 't' -> Buffer.add_char buf '\t'; advance st
        | Some 'r' -> Buffer.add_char buf '\r'; advance st
        | Some 'b' -> Buffer.add_char buf '\b'; advance st
        | Some 'f' -> Buffer.add_char buf '\012'; advance st
        | Some 'u' ->
            advance st;
            let cp = parse_hex4 st in
            (* Surrogate pair handling. *)
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              expect st '\\';
              expect st 'u';
              let lo = parse_hex4 st in
              if lo < 0xDC00 || lo > 0xDFFF then
                fail st "invalid low surrogate";
              let combined =
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              in
              add_utf8 buf combined
            end
            else add_utf8 buf cp
        | _ -> fail st "invalid escape");
        loop ()
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some ('0' .. '9' | '-' | '+') -> advance st
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance st
    | _ -> continue := false
  done;
  let text = String.sub st.input start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "invalid number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail st "invalid number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> String (parse_string_body st)
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec loop () =
      skip_ws st;
      let key = parse_string_body st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      fields := (key, v) :: !fields;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; loop ()
      | Some '}' -> advance st
      | _ -> fail st "expected ',' or '}'"
    in
    loop ();
    Obj (List.rev !fields)
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let items = ref [] in
    let rec loop () =
      let v = parse_value st in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; loop ()
      | Some ']' -> advance st
      | _ -> fail st "expected ',' or ']'"
    in
    loop ();
    List (List.rev !items)
  end

let of_string s =
  let st = { input = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with
    | Some v -> v
    | None -> Null)
  | _ -> invalid_arg "Sjson.member: not an object"

let get_string = function
  | String s -> s
  | _ -> invalid_arg "Sjson.get_string"

let get_int = function Int i -> i | _ -> invalid_arg "Sjson.get_int"
let get_bool = function Bool b -> b | _ -> invalid_arg "Sjson.get_bool"
let get_list = function List l -> l | _ -> invalid_arg "Sjson.get_list"
let get_obj = function Obj o -> o | _ -> invalid_arg "Sjson.get_obj"

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | String x, String y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           x y
  | _ -> false
