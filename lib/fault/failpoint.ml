(* Deterministic fault injection for the durability layer.

   A *failpoint* is a named site in the persistence code (WAL append,
   snapshot rename, WORM mirror write, ...). Tests and the CLI arm a
   failpoint with a mode; the instrumented code routes its writes and
   critical transitions through this module, which then simulates an I/O
   error or a process crash at exactly that site.

   Modes:
   - [Off]            the failpoint is inert (production default).
   - [Fail]           the next guarded operation raises [Injected_error]
                      without touching the file — a clean I/O failure the
                      caller may handle and keep running.
   - [Crash_after n]  byte-granular crash: guarded writes through this
                      point succeed until [n] cumulative bytes have been
                      written, then the write stops mid-stream (the partial
                      prefix is flushed, simulating a torn page) and
                      [Injected_crash] is raised. At non-write trip sites
                      any [Crash_after] crashes immediately.

   Both modes disarm once fired so a single arm simulates a single event.
   After an injected crash the whole module enters a "crashed" state in
   which *every* guarded operation re-raises [Injected_crash]: once the
   simulated process is dead nothing more may reach disk (otherwise
   e.g. a rollback handler would append to the WAL after the torn record,
   turning a recoverable torn tail into mid-file corruption). [reset]
   revives the process for the next scenario. *)

type mode = Off | Fail | Crash_after of int

exception Injected_crash of string
exception Injected_error of string

type state = { mutable mode : mode; mutable written : int }

let table : (string, state) Hashtbl.t = Hashtbl.create 32
let crashed = ref false

let state_of name =
  match Hashtbl.find_opt table name with
  | Some s -> s
  | None ->
      let s = { mode = Off; written = 0 } in
      Hashtbl.add table name s;
      s

let register name = ignore (state_of name : state)

let points () =
  Hashtbl.fold (fun k _ acc -> k :: acc) table [] |> List.sort String.compare

let set name mode =
  let s = state_of name in
  s.mode <- mode;
  s.written <- 0

let clear name = set name Off

let reset () =
  crashed := false;
  Hashtbl.iter
    (fun _ s ->
      s.mode <- Off;
      s.written <- 0)
    table

let crash name =
  crashed := true;
  raise (Injected_crash ("injected crash at " ^ name))

let check_alive name =
  if !crashed then
    raise (Injected_crash ("simulated process already crashed (" ^ name ^ ")"))

let fail name =
  raise (Injected_error ("injected I/O error at " ^ name))

(* A non-write trip site (e.g. just before a rename). *)
let trip name =
  check_alive name;
  let s = state_of name in
  match s.mode with
  | Off -> ()
  | Fail ->
      s.mode <- Off;
      fail name
  | Crash_after _ ->
      s.mode <- Off;
      crash name

(* Byte-counting write sink. *)
let output name oc str =
  check_alive name;
  let s = state_of name in
  match s.mode with
  | Off -> output_string oc str
  | Fail ->
      s.mode <- Off;
      fail name
  | Crash_after n ->
      let len = String.length str in
      let budget = n - s.written in
      if budget >= len then begin
        output_string oc str;
        s.written <- s.written + len
      end
      else begin
        if budget > 0 then output_substring oc str 0 budget;
        flush oc;
        s.mode <- Off;
        crash name
      end

let output_buffer name oc buf =
  let s = state_of name in
  if (not !crashed) && s.mode = Off then Buffer.output_buffer oc buf
  else output name oc (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Parsing, for the CLI's --failpoint NAME=MODE flag. *)

let mode_to_string = function
  | Off -> "off"
  | Fail -> "error"
  | Crash_after 0 -> "crash"
  | Crash_after n -> Printf.sprintf "crash:%d" n

let mode_of_string str =
  match String.lowercase_ascii str with
  | "off" -> Ok Off
  | "error" -> Ok Fail
  | "crash" -> Ok (Crash_after 0)
  | s when String.length s > 6 && String.sub s 0 6 = "crash:" -> (
      match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some n when n >= 0 -> Ok (Crash_after n)
      | _ -> Result.Error ("bad byte count in mode: " ^ str))
  | _ -> Result.Error ("unknown failpoint mode (off|error|crash|crash:N): " ^ str)

let parse_spec spec =
  match String.index_opt spec '=' with
  | None -> Result.Error ("expected NAME=MODE, got: " ^ spec)
  | Some i ->
      let name = String.sub spec 0 i in
      let mode = String.sub spec (i + 1) (String.length spec - i - 1) in
      if name = "" then Result.Error ("empty failpoint name in: " ^ spec)
      else Result.map (fun m -> (name, m)) (mode_of_string mode)
