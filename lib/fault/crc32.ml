(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum used to frame
   WAL records and snapshot containers. Streaming API so callers can hash a
   record spread across several pieces without concatenating them. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

type t = int32

let init : t = 0xFFFFFFFFl

let update_char (c : t) ch : t =
  let table = Lazy.force table in
  let idx = Int32.to_int (Int32.logand (Int32.logxor c (Int32.of_int (Char.code ch))) 0xFFl) in
  Int32.logxor table.(idx) (Int32.shift_right_logical c 8)

let update_substring (c : t) s off len : t =
  let acc = ref c in
  for i = off to off + len - 1 do
    acc := update_char !acc (String.unsafe_get s i)
  done;
  !acc

let update_string c s = update_substring c s 0 (String.length s)

let update_buffer (c : t) buf : t =
  let acc = ref c in
  for i = 0 to Buffer.length buf - 1 do
    acc := update_char !acc (Buffer.nth buf i)
  done;
  !acc

let finish (c : t) : int32 = Int32.lognot c

let string s = finish (update_string init s)
let substring s ~off ~len = finish (update_substring init s off len)
