(* Crash-safe filesystem helpers shared by the durability layer. *)

(* Tolerates concurrent creation: another domain/process may win the race
   between the existence check and mkdir, which must not be an error. *)
let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Unix.mkdir d 0o755 with
    | Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

let fsync_channel oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

(* Durability of a rename requires fsyncing the containing directory.
   Best-effort: some filesystems refuse fsync on a directory fd. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* Failpoints threaded through [atomic_write]; call once per prefix at
   module-init time so the points show up in [Failpoint.points] before any
   write happens. *)
let register_atomic_points prefix =
  List.iter
    (fun suffix -> Failpoint.register (prefix ^ "." ^ suffix))
    [ "write"; "fsync"; "rename_prev"; "rename" ]

(* Atomically replace [path] with [contents]:
   write [path].tmp, fsync it, then rename over [path]. A crash at any
   instant leaves either the complete old file or the complete new file;
   the only debris is a torn [path].tmp, which readers must checksum.
   With [keep_previous], the old file is first renamed to [path].prev and
   retained until the next save — a second, older generation to fall back
   to if [path] is later found corrupt on disk. *)
let atomic_write ?(keep_previous = false) ~point_prefix ~path contents =
  let point s = point_prefix ^ "." ^ s in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Failpoint.output (point "write") oc contents;
     flush oc;
     Failpoint.trip (point "fsync");
     (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  if keep_previous && Sys.file_exists path then begin
    Failpoint.trip (point "rename_prev");
    Sys.rename path (path ^ ".prev")
  end;
  (* The nastiest window: with [keep_previous] there is no [path] at all
     between the two renames. Recovery must then pick up the fsynced tmp
     (complete, checksummed) or fall back to the .prev generation. *)
  Failpoint.trip (point "rename");
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)
