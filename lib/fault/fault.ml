(* Entry point of the [fault] library.

   [Fault.*]        failpoint registry and guarded write sinks (Failpoint)
   [Fault.Crc32]    the CRC-32 used by WAL frames and snapshot containers
   [Fault.Fsutil]   mkdir_p / fsync / atomic-rename helpers *)

include Failpoint
module Crc32 = Crc32
module Fsutil = Fsutil
