(* Length-prefixed framing for the ledger wire protocol.

   Every message travels as one frame:

     offset  size  field
     0       4     magic "SLW1" (protocol family + frame-format revision)
     4       4     payload length, unsigned big-endian
     8       len   payload (JSON text, see Protocol)

   The magic makes stream desynchronisation detectable: after junk bytes
   or a torn frame the receiver reports what it saw instead of trying to
   interpret garbage as a length. Payloads are opaque bytes here, so
   control characters and any Sjson escaping quirks in the payload cannot
   confuse the framing layer.

   Reads are buffered over the raw file descriptor (not an in_channel) so
   the server can poll for readability with [select] between frames
   without losing buffered bytes; writes go through an out_channel so the
   server can route them through a [Fault] failpoint. *)

let magic = "SLW1"
let header_len = 8
let default_max_frame = 4 * 1024 * 1024

type conn = {
  fd : Unix.file_descr;
  oc : out_channel;
  ibuf : Bytes.t;
  mutable ipos : int;
  mutable ilen : int;
  mutable closed : bool;
}

let of_fd fd =
  {
    fd;
    oc = Unix.out_channel_of_descr fd;
    ibuf = Bytes.create 65536;
    ipos = 0;
    ilen = 0;
    closed = false;
  }

let close c =
  if not c.closed then begin
    c.closed <- true;
    (* close_out closes the underlying fd as well. *)
    try close_out c.oc with Sys_error _ | Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Sending *)

let header_bytes len =
  let b = Bytes.create header_len in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 5 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 6 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 7 (Char.chr (len land 0xff));
  Bytes.unsafe_to_string b

(* [?point] names a failpoint to route the bytes through (the server's
   write path); without it the write is direct (clients). Raises
   [Sys_error] / [Unix.Unix_error] on transport failure and the
   [Fault] exceptions when an armed failpoint fires. *)
let send ?point c payload =
  let out s =
    match point with
    | Some p -> Fault.output p c.oc s
    | None -> output_string c.oc s
  in
  out (header_bytes (String.length payload));
  out payload;
  flush c.oc

(* ------------------------------------------------------------------ *)
(* Receiving *)

type recv_result =
  | Frame of string
  | Eof  (** peer closed cleanly at a frame boundary *)
  | Junk of string  (** stream bytes that are not a frame header *)
  | Truncated  (** peer closed mid-frame *)
  | Oversized of { size : int; limit : int }

let buffered c = c.ilen > c.ipos

(* Wait up to [timeout] seconds for a byte to be readable. Buffered bytes
   count as readable; EINTR reads as "nothing yet" so callers re-poll and
   notice shutdown/idle deadlines. *)
let poll c timeout =
  buffered c
  ||
  match Unix.select [ c.fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let refill c =
  let n = Unix.read c.fd c.ibuf 0 (Bytes.length c.ibuf) in
  c.ipos <- 0;
  c.ilen <- n;
  n

(* Refill, optionally bounded by an absolute deadline: wait for
   readability only until [deadline], raising ETIMEDOUT past it. This is
   the select-based fallback (and reinforcement) for SO_RCVTIMEO — but
   stronger: the deadline is *total* across the frame, so a peer
   dribbling one byte per slice cannot hold the reader forever by
   resetting a per-read timer. *)
let refill_by c deadline =
  (match deadline with
  | None -> ()
  | Some at ->
      let remaining = at -. Unix.gettimeofday () in
      if
        remaining <= 0.
        || not
             (match Unix.select [ c.fd ] [] [] remaining with
             | [], _, _ -> false
             | _ -> true
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> false)
      then raise (Unix.Unix_error (Unix.ETIMEDOUT, "Frame.recv", "")));
  refill c

(* Read exactly [n] bytes; [Error got] reports how many arrived before
   EOF. *)
let read_exact ?deadline c n =
  let out = Bytes.create n in
  let rec go filled =
    if filled = n then Ok (Bytes.unsafe_to_string out)
    else if buffered c then begin
      let take = min (n - filled) (c.ilen - c.ipos) in
      Bytes.blit c.ibuf c.ipos out filled take;
      c.ipos <- c.ipos + take;
      go (filled + take)
    end
    else if refill_by c deadline = 0 then Error filled
    else go filled
  in
  go 0

(* Read one frame. [?point] is a failpoint tripped before the read (the
   server's read path), so torn connections are injectable.
   [?read_timeout] bounds the *whole* frame: once the first bytes are
   being read, header and payload must complete within that many
   seconds. Raises [Unix.Unix_error] when the socket errors — EAGAIN
   when an SO_RCVTIMEO set on the fd expires, ETIMEDOUT when
   [read_timeout] does. *)
let recv ?point ?(max_frame = default_max_frame) ?read_timeout c =
  Option.iter Fault.trip point;
  let deadline =
    Option.map (fun s -> Unix.gettimeofday () +. s) read_timeout
  in
  match read_exact ?deadline c header_len with
  | Error 0 -> Eof
  | Error _ -> Truncated
  | Ok header ->
      if String.sub header 0 4 <> magic then
        Junk (String.sub header 0 4)
      else
        let len =
          (Char.code header.[4] lsl 24)
          lor (Char.code header.[5] lsl 16)
          lor (Char.code header.[6] lsl 8)
          lor Char.code header.[7]
        in
        if len > max_frame then Oversized { size = len; limit = max_frame }
        else begin
          match read_exact ?deadline c len with
          | Ok payload -> Frame payload
          | Error _ -> Truncated
        end
