(* Request/response catalogue of the ledger wire protocol, version 1.

   Every frame payload is one JSON object. Requests carry a client-chosen
   "id" echoed verbatim in the response, a "req" discriminator, and the
   request's own fields; responses carry "id", a "resp" discriminator,
   and theirs. The first request on a connection must be "hello": the
   server rejects any other opener and refuses mismatched protocol
   versions with the typed "version_mismatch" error, so incompatible
   peers fail fast instead of mis-parsing each other.

   Row values cross the wire in [Value.to_tagged_json] form, which
   round-trips every datatype (including DATETIME, which plain JSON would
   flatten into a float). Digests and receipts travel as their existing
   canonical JSON documents so a client can store them and later feed
   them back to "verify" as out-of-band trust anchors (paper §3.4). *)

open Relation

let version = 1

(* ------------------------------------------------------------------ *)
(* Principal authentication *)

(* The handshake's principal claim is authenticated with an HMAC-SHA256
   tag over a fixed-context message, keyed by a shared secret every node
   of the deployment holds (a file passed to `serve --auth-secret`). The
   context prefix stops the tag from being reusable as a MAC over any
   other protocol string. Tags travel hex-encoded. *)

let principal_context = "SLW1-principal:"

let principal_tag ~secret name =
  Ledger_crypto.Hex.encode
    (Ledger_crypto.Hmac.mac ~key:secret (principal_context ^ name))

(* Constant-time on the tag comparison; malformed hex is a plain reject. *)
let principal_tag_ok ~secret ~name ~tag =
  match Ledger_crypto.Hex.decode tag with
  | exception Invalid_argument _ -> false
  | raw ->
      Ledger_crypto.Hmac.verify ~key:secret
        ~msg:(principal_context ^ name)
        ~tag:raw

(* ------------------------------------------------------------------ *)
(* Typed error codes *)

type error_code =
  | Bad_request  (** malformed frame payload, or request before hello *)
  | Parse_error  (** SQL failed to lex/parse *)
  | Exec_error  (** statement or ledger operation failed *)
  | Txn_state  (** BEGIN with a transaction open, COMMIT/ROLLBACK without *)
  | Version_mismatch  (** client and server protocol versions differ *)
  | Too_large  (** frame exceeded the server's max-frame limit *)
  | Busy  (** server at its max-connection limit *)
  | Shutting_down  (** server is draining sessions *)
  | Read_only  (** write sent to a read replica; message names the primary *)
  | Replication_lag  (** digest deferred: geo-replica lags (§3.6 gate) *)
  | Replication_stuck  (** digest gate alert: replica stuck behind *)
  | Overloaded
      (** admission control shed the request before any work was done;
          the error's [retry_after_ms] hints when to retry *)
  | Deadline_exceeded
      (** the request blew its deadline budget while queued; answered
          without doing the work, so retrying is always safe *)
  | Wrong_shard
      (** the request was routed with a stale shard map; the error's
          [map_epoch] is the server's current epoch — refetch the map
          ([Shard_map]) and retry. Refused before any work, so always
          retry-safe. *)
  | Auth_failed
      (** the hello claimed a principal the server could not authenticate
          (bad HMAC tag, or the server holds no shared secret); the
          connection is closed — retrying with the same credentials is
          pointless *)
  | Internal  (** unexpected server-side failure *)

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Parse_error -> "parse_error"
  | Exec_error -> "exec_error"
  | Txn_state -> "txn_state"
  | Version_mismatch -> "version_mismatch"
  | Too_large -> "too_large"
  | Busy -> "busy"
  | Shutting_down -> "shutting_down"
  | Read_only -> "read_only"
  | Replication_lag -> "replication_lag"
  | Replication_stuck -> "replication_stuck"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Wrong_shard -> "wrong_shard"
  | Auth_failed -> "auth_failed"
  | Internal -> "internal"

let error_code_of_string = function
  | "bad_request" -> Some Bad_request
  | "parse_error" -> Some Parse_error
  | "exec_error" -> Some Exec_error
  | "txn_state" -> Some Txn_state
  | "version_mismatch" -> Some Version_mismatch
  | "too_large" -> Some Too_large
  | "busy" -> Some Busy
  | "shutting_down" -> Some Shutting_down
  | "read_only" -> Some Read_only
  | "replication_lag" -> Some Replication_lag
  | "replication_stuck" -> Some Replication_stuck
  | "overloaded" -> Some Overloaded
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "wrong_shard" -> Some Wrong_shard
  | "auth_failed" -> Some Auth_failed
  | "internal" -> Some Internal
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Requests *)

type request =
  | Hello of {
      version : int;
      client : string;
      principal : string option;
          (** authenticated identity claimed for this session; recorded
              as the transactions system table's [username] on every
              commit the session makes. [None] keeps the legacy
              anonymous "client-N" identity. *)
      auth : string option;
          (** hex HMAC-SHA256 tag over ["SLW1-principal:" ^ principal]
              keyed by the deployment's shared secret; mandatory when
              [principal] is claimed *)
    }
  | Ping
  | Exec of { sql : string }  (** any statement; writes serialize *)
  | Query of { sql : string }  (** SELECT only; runs on the read path *)
  | Begin
  | Commit
  | Rollback
  | Digest  (** close the open block and return a signed digest *)
  | Receipt of { txn_id : int }
  | Receipts of { txn_ids : int list }
      (** batch receipt fetch: one round trip for many transactions.
          Served from the per-block receipt cache, so receipts from the
          same block share subtree hashes and one block signature.
          Transactions still in the open block come back in the
          response's [pending] list — retry them after the next block
          close — rather than failing the batch. *)
  | Verify of { tables : string list; digests : Sjson.t list }
  | Create_table of {
      name : string;
      columns : (string * string) list;  (** (name, datatype string) *)
      key : string list;
      ledger : bool;
          (** [true] (the default) creates a ledger table; [false]
              creates a plain updatable table — the starting point of an
              online migration *)
    }
  | Checkpoint
  | Stats
  | Subscribe of { from_lsn : int; replica_id : string }
      (** switch the connection into a replication stream: the server
          replies [Subscribed] (stream resumes after [from_lsn]) or
          [Snapshot_r] (position compacted away; full state shipped),
          then pushes batched WAL frames until the connection closes.
          [replica_id] is the subscriber's stable identity — reconnects
          under the same id resume its lag-gate accounting. *)
  | Shard_map
      (** ask a coordinator for its current shard map; answered with
          [Shard_map_r]. Single-node servers refuse it. *)
  | Prepare of { gid : string }
      (** 2PC phase one: durably stage the session's open transaction
          under global id [gid] and vote. [Ok_r] is the yes vote — the
          shard promises to commit when told to; any error is a no. *)
  | Decide of { gid : string; commit : bool }
      (** 2PC phase two: commit or abort the transaction prepared under
          [gid]. Idempotent — deciding an unknown gid answers [Ok_r] so a
          recovering coordinator can re-send decisions. *)
  | Migrate of {
      source : string;  (** plain (regular) table to copy from *)
      target : string;  (** ledger table to copy into *)
      after_key : Value.t list;
          (** resume cursor: copy only rows whose primary key sorts
              strictly after this one; [[]] starts from the beginning *)
      limit : int;  (** max rows copied in this one batch/commit *)
    }
      (** copy one group-commit-sized chunk of [source] into [target] as
          a single committed transaction under the session's principal.
          Rows whose key already exists in [target] are skipped, so
          re-sending a batch after a crash or torn reply is harmless —
          the request is idempotent and retry-safe. *)
  | Quit

let request_kind = function
  | Hello _ -> "hello"
  | Ping -> "ping"
  | Exec _ -> "exec"
  | Query _ -> "query"
  | Begin -> "begin"
  | Commit -> "commit"
  | Rollback -> "rollback"
  | Digest -> "digest"
  | Receipt _ -> "receipt"
  | Receipts _ -> "receipts"
  | Verify _ -> "verify"
  | Create_table _ -> "create_table"
  | Checkpoint -> "checkpoint"
  | Stats -> "stats"
  | Subscribe _ -> "subscribe"
  | Shard_map -> "shard_map"
  | Prepare _ -> "prepare"
  | Decide _ -> "decide"
  | Migrate _ -> "migrate"
  | Quit -> "quit"

let request_fields = function
  | Hello { version; client; principal; auth } ->
      [ ("version", Sjson.Int version); ("client", Sjson.String client) ]
      @ (match principal with
        | Some p -> [ ("principal", Sjson.String p) ]
        | None -> [])
      @ (match auth with
        | Some a -> [ ("auth", Sjson.String a) ]
        | None -> [])
  | Exec { sql } | Query { sql } -> [ ("sql", Sjson.String sql) ]
  | Receipt { txn_id } -> [ ("txn_id", Sjson.Int txn_id) ]
  | Receipts { txn_ids } ->
      [ ("txn_ids", Sjson.List (List.map (fun i -> Sjson.Int i) txn_ids)) ]
  | Subscribe { from_lsn; replica_id } ->
      [
        ("from_lsn", Sjson.Int from_lsn);
        ("replica_id", Sjson.String replica_id);
      ]
  | Verify { tables; digests } ->
      [
        ("tables", Sjson.List (List.map (fun t -> Sjson.String t) tables));
        ("digests", Sjson.List digests);
      ]
  | Create_table { name; columns; key; ledger } ->
      [
        ("name", Sjson.String name);
        ( "columns",
          Sjson.List
            (List.map
               (fun (n, ty) ->
                 Sjson.Obj
                   [ ("name", Sjson.String n); ("type", Sjson.String ty) ])
               columns) );
        ("key", Sjson.List (List.map (fun k -> Sjson.String k) key));
        ("ledger", Sjson.Bool ledger);
      ]
  | Prepare { gid } -> [ ("gid", Sjson.String gid) ]
  | Decide { gid; commit } ->
      [ ("gid", Sjson.String gid); ("commit", Sjson.Bool commit) ]
  | Migrate { source; target; after_key; limit } ->
      [
        ("source", Sjson.String source);
        ("target", Sjson.String target);
        ( "after_key",
          Sjson.List (List.map Value.to_tagged_json after_key) );
        ("limit", Sjson.Int limit);
      ]
  | Ping | Begin | Commit | Rollback | Digest | Checkpoint | Stats | Shard_map
  | Quit ->
      []

(* ------------------------------------------------------------------ *)
(* Responses *)

type verify_summary = {
  vs_ok : bool;
  vs_blocks : int;
  vs_transactions : int;
  vs_versions : int;
  vs_violations : string list;
}

type response =
  | Welcome of { version : int; server : string; database : string }
  | Pong
  | Ok_r  (** generic success (create_table, checkpoint) *)
  | Txn_r of { txn_id : int option }  (** begin/commit/rollback outcome *)
  | Rows_r of { columns : string list; rows : Value.t list list }
  | Affected_r of { rows : int; txn_id : int option }
      (** [txn_id] is the autocommitted statement's transaction id (when
          the server runs group commit), so a client can later fetch the
          transaction's receipt without a separate query *)
  | Digest_r of Sjson.t  (** canonical digest document *)
  | Receipt_r of Sjson.t  (** canonical receipt document *)
  | Receipts_r of {
      receipts : Sjson.t list;
          (* key-stripped when [block_keys] is non-empty: a batch from
             one block shares its public key and signature *)
      pending : int list;
      block_keys : Sjson.t list;
          (* per-block {block_id; public_key; signature}, carried once *)
    }
      (** receipts for the closed-block transactions of a [Receipts]
          batch; [pending] lists the ids still in the open block *)
  | Verify_r of verify_summary
  | Stats_r of string list  (** one plain-text metric per line *)
  | Subscribed of { last_lsn : int }
      (** stream accepted; batched WAL frames follow, starting after the
          subscriber's [from_lsn] and currently extending to [last_lsn] *)
  | Snapshot_r of { snapshot : Sjson.t; last_lsn : int }
      (** the requested position predates the primary's in-memory log
          (compaction/restart truncated it): install this full snapshot,
          whose state corresponds to [last_lsn], then stream from there *)
  | Shard_map_r of { epoch : int; shards : (string * int) list }
      (** the coordinator's partition map: [shards.(i)] is the (host,
          port) of the primary owning hash bucket [i]; [epoch] increments
          on every topology change and gates [wrong_shard] refusals *)
  | Migrate_r of {
      copied : int;  (** rows actually inserted by this batch *)
      last_key : Value.t list;
          (** primary key of the last source row examined — the resume
              cursor for the next batch; [[]] when the source was empty
              past the requested cursor *)
      finished : bool;  (** no source rows remain past [last_key] *)
    }
  | Bye
  | Error_r of {
      code : error_code;
      message : string;
      retry_after_ms : int option;
          (** for [Overloaded]: suggested backoff before retrying *)
      map_epoch : int option;
          (** for [Wrong_shard]: the server's current shard-map epoch *)
    }

let response_is_error = function Error_r _ -> true | _ -> false

let response_kind = function
  | Welcome _ -> "welcome"
  | Pong -> "pong"
  | Ok_r -> "ok"
  | Txn_r _ -> "txn"
  | Rows_r _ -> "rows"
  | Affected_r _ -> "affected"
  | Digest_r _ -> "digest"
  | Receipt_r _ -> "receipt"
  | Receipts_r _ -> "receipts"
  | Verify_r _ -> "verify"
  | Stats_r _ -> "stats"
  | Subscribed _ -> "subscribed"
  | Snapshot_r _ -> "snapshot"
  | Shard_map_r _ -> "shard_map"
  | Migrate_r _ -> "migrate"
  | Bye -> "bye"
  | Error_r _ -> "error"

let response_fields = function
  | Welcome { version; server; database } ->
      [
        ("version", Sjson.Int version);
        ("server", Sjson.String server);
        ("database", Sjson.String database);
      ]
  | Txn_r { txn_id } ->
      [ ("txn_id", match txn_id with Some i -> Sjson.Int i | None -> Sjson.Null) ]
  | Rows_r { columns; rows } ->
      [
        ("columns", Sjson.List (List.map (fun c -> Sjson.String c) columns));
        ( "rows",
          Sjson.List
            (List.map
               (fun row -> Sjson.List (List.map Value.to_tagged_json row))
               rows) );
      ]
  | Affected_r { rows; txn_id } -> (
      ("affected", Sjson.Int rows)
      ::
      (match txn_id with
      | Some i -> [ ("txn_id", Sjson.Int i) ]
      | None -> []))
  | Digest_r j -> [ ("digest", j) ]
  | Receipt_r j -> [ ("receipt", j) ]
  | Receipts_r { receipts; pending; block_keys } ->
      [
        ("receipts", Sjson.List receipts);
        ("pending", Sjson.List (List.map (fun i -> Sjson.Int i) pending));
        ("block_keys", Sjson.List block_keys);
      ]
  | Verify_r v ->
      [
        ("ok", Sjson.Bool v.vs_ok);
        ("blocks", Sjson.Int v.vs_blocks);
        ("transactions", Sjson.Int v.vs_transactions);
        ("versions", Sjson.Int v.vs_versions);
        ( "violations",
          Sjson.List (List.map (fun s -> Sjson.String s) v.vs_violations) );
      ]
  | Stats_r lines ->
      [ ("lines", Sjson.List (List.map (fun s -> Sjson.String s) lines)) ]
  | Subscribed { last_lsn } -> [ ("last_lsn", Sjson.Int last_lsn) ]
  | Snapshot_r { snapshot; last_lsn } ->
      [ ("snapshot", snapshot); ("last_lsn", Sjson.Int last_lsn) ]
  | Shard_map_r { epoch; shards } ->
      [
        ("epoch", Sjson.Int epoch);
        ( "shards",
          Sjson.List
            (List.map
               (fun (host, port) ->
                 Sjson.Obj
                   [ ("host", Sjson.String host); ("port", Sjson.Int port) ])
               shards) );
      ]
  | Migrate_r { copied; last_key; finished } ->
      [
        ("copied", Sjson.Int copied);
        ("last_key", Sjson.List (List.map Value.to_tagged_json last_key));
        ("finished", Sjson.Bool finished);
      ]
  | Error_r { code; message; retry_after_ms; map_epoch } ->
      ("code", Sjson.String (error_code_to_string code))
      :: ("message", Sjson.String message)
      ::
      ((match retry_after_ms with
       | Some ms -> [ ("retry_after_ms", Sjson.Int ms) ]
       | None -> [])
      @
      match map_epoch with
      | Some e -> [ ("map_epoch", Sjson.Int e) ]
      | None -> [])
  | Pong | Ok_r | Bye -> []

(* ------------------------------------------------------------------ *)
(* Envelopes *)

(* [deadline_ms] is the client's remaining budget for this request, in
   whole milliseconds measured from the moment the frame was sent. The
   server stamps the frame's arrival and answers [deadline_exceeded]
   without doing the work once [arrival + deadline_ms] has passed — a
   request that rotted in a queue is refused, not executed late. The
   field is an envelope-level knob (like "id"), not a request field, so
   every request kind can carry one; absent means unlimited. *)
(* [map_epoch] is the shard-map generation the client routed with, also
   envelope-level: a sharded deployment stamps every request so a
   coordinator (or shard) can refuse stale routing with [wrong_shard]
   before doing any work. Absent means "don't check" — single-node
   servers ignore it. *)
let encode_request ~id ?deadline_ms ?map_epoch req =
  Sjson.to_string
    (Sjson.Obj
       (("id", Sjson.Int id)
       :: ("req", Sjson.String (request_kind req))
       ::
       ((match deadline_ms with
        | Some ms -> [ ("deadline_ms", Sjson.Int ms) ]
        | None -> [])
       @ (match map_epoch with
         | Some e -> [ ("map_epoch", Sjson.Int e) ]
         | None -> [])
       @ request_fields req)))

let encode_response ~id resp =
  Sjson.to_string
    (Sjson.Obj
       (("id", Sjson.Int id)
       :: ("resp", Sjson.String (response_kind resp))
       :: response_fields resp))

(* Decoding helpers: all failures collapse to a human-readable Error
   string — the peer sent a well-framed but malformed payload. *)

let decode payload =
  match Sjson.of_string payload with
  | exception Sjson.Parse_error e -> Error ("payload is not JSON: " ^ e)
  | Sjson.Obj _ as obj -> Ok obj
  | _ -> Error "payload is not a JSON object"

let req_id obj =
  match Sjson.member "id" obj with Sjson.Int i -> i | _ -> 0

let str_field name obj =
  match Sjson.member name obj with
  | Sjson.String s -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let int_field name obj =
  match Sjson.member name obj with
  | Sjson.Int i -> Ok i
  | _ -> Error (Printf.sprintf "missing int field %S" name)

let ( let* ) = Result.bind

let string_list name obj =
  match Sjson.member name obj with
  | Sjson.Null -> Ok []
  | Sjson.List items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Sjson.String s :: rest -> go (s :: acc) rest
        | _ -> Error (Printf.sprintf "field %S must be a list of strings" name)
      in
      go [] items
  | _ -> Error (Printf.sprintf "field %S must be a list" name)

let value_of_tagged json =
  match Value.of_tagged_json json with
  | Some v -> Ok v
  | None -> Error "row cell is not a tagged value"

(* A row key as a list of tagged values; absent means []. *)
let value_list name obj =
  match Sjson.member name obj with
  | Sjson.Null -> Ok []
  | Sjson.List items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
            let* v = value_of_tagged item in
            go (v :: acc) rest
      in
      go [] items
  | _ -> Error (Printf.sprintf "field %S must be a list of tagged values" name)

let decode_request payload =
  let* obj = decode payload in
  let id = req_id obj in
  let deadline_ms =
    match Sjson.member "deadline_ms" obj with
    | Sjson.Int ms when ms >= 0 -> Some ms
    | _ -> None
  in
  let map_epoch =
    match Sjson.member "map_epoch" obj with
    | Sjson.Int e when e >= 0 -> Some e
    | _ -> None
  in
  let tag res = Result.map (fun r -> (id, deadline_ms, map_epoch, r)) res in
  match Sjson.member "req" obj with
  | Sjson.String kind ->
      tag
        (match kind with
        | "hello" ->
            let* version = int_field "version" obj in
            let client =
              match str_field "client" obj with Ok c -> c | Error _ -> "?"
            in
            let opt_str name =
              match str_field name obj with Ok s -> Some s | Error _ -> None
            in
            Ok
              (Hello
                 {
                   version;
                   client;
                   principal = opt_str "principal";
                   auth = opt_str "auth";
                 })
        | "ping" -> Ok Ping
        | "exec" ->
            let* sql = str_field "sql" obj in
            Ok (Exec { sql })
        | "query" ->
            let* sql = str_field "sql" obj in
            Ok (Query { sql })
        | "begin" -> Ok Begin
        | "commit" -> Ok Commit
        | "rollback" -> Ok Rollback
        | "digest" -> Ok Digest
        | "receipt" ->
            let* txn_id = int_field "txn_id" obj in
            Ok (Receipt { txn_id })
        | "receipts" ->
            let* txn_ids =
              match Sjson.member "txn_ids" obj with
              | Sjson.List items ->
                  let rec go acc = function
                    | [] -> Ok (List.rev acc)
                    | Sjson.Int i :: rest -> go (i :: acc) rest
                    | _ -> Error "field \"txn_ids\" must be a list of ints"
                  in
                  go [] items
              | _ -> Error "missing field \"txn_ids\""
            in
            Ok (Receipts { txn_ids })
        | "verify" ->
            let* tables = string_list "tables" obj in
            let digests =
              match Sjson.member "digests" obj with
              | Sjson.List items -> items
              | _ -> []
            in
            Ok (Verify { tables; digests })
        | "create_table" ->
            let* name = str_field "name" obj in
            let* key = string_list "key" obj in
            let* columns =
              match Sjson.member "columns" obj with
              | Sjson.List items ->
                  let rec go acc = function
                    | [] -> Ok (List.rev acc)
                    | (Sjson.Obj _ as col) :: rest ->
                        let* n = str_field "name" col in
                        let* ty = str_field "type" col in
                        go ((n, ty) :: acc) rest
                    | _ -> Error "each column must be an object"
                  in
                  go [] items
              | _ -> Error "missing field \"columns\""
            in
            let ledger =
              match Sjson.member "ledger" obj with
              | Sjson.Bool b -> b
              | _ -> true
            in
            Ok (Create_table { name; columns; key; ledger })
        | "checkpoint" -> Ok Checkpoint
        | "stats" -> Ok Stats
        | "subscribe" ->
            let* from_lsn = int_field "from_lsn" obj in
            let* replica_id = str_field "replica_id" obj in
            Ok (Subscribe { from_lsn; replica_id })
        | "shard_map" -> Ok Shard_map
        | "prepare" ->
            let* gid = str_field "gid" obj in
            Ok (Prepare { gid })
        | "decide" ->
            let* gid = str_field "gid" obj in
            let* commit =
              match Sjson.member "commit" obj with
              | Sjson.Bool b -> Ok b
              | _ -> Error "missing bool field \"commit\""
            in
            Ok (Decide { gid; commit })
        | "migrate" ->
            let* source = str_field "source" obj in
            let* target = str_field "target" obj in
            let* after_key = value_list "after_key" obj in
            let* limit = int_field "limit" obj in
            Ok (Migrate { source; target; after_key; limit })
        | "quit" -> Ok Quit
        | other -> Error ("unknown request " ^ other))
  | _ -> Error "missing request discriminator \"req\""

let decode_response payload =
  let* obj = decode payload in
  let id = req_id obj in
  let tag res = Result.map (fun r -> (id, r)) res in
  match Sjson.member "resp" obj with
  | Sjson.String kind ->
      tag
        (match kind with
        | "welcome" ->
            let* version = int_field "version" obj in
            let* server = str_field "server" obj in
            let* database = str_field "database" obj in
            Ok (Welcome { version; server; database })
        | "pong" -> Ok Pong
        | "ok" -> Ok Ok_r
        | "txn" ->
            let txn_id =
              match Sjson.member "txn_id" obj with
              | Sjson.Int i -> Some i
              | _ -> None
            in
            Ok (Txn_r { txn_id })
        | "rows" ->
            let* columns = string_list "columns" obj in
            let* rows =
              match Sjson.member "rows" obj with
              | Sjson.List items ->
                  let rec go acc = function
                    | [] -> Ok (List.rev acc)
                    | Sjson.List cells :: rest ->
                        let rec cells_go cacc = function
                          | [] -> Ok (List.rev cacc)
                          | c :: crest ->
                              let* v = value_of_tagged c in
                              cells_go (v :: cacc) crest
                        in
                        let* row = cells_go [] cells in
                        go (row :: acc) rest
                    | _ -> Error "each row must be a list"
                  in
                  go [] items
              | _ -> Error "missing field \"rows\""
            in
            Ok (Rows_r { columns; rows })
        | "affected" ->
            let* n = int_field "affected" obj in
            let txn_id =
              match Sjson.member "txn_id" obj with
              | Sjson.Int i -> Some i
              | _ -> None
            in
            Ok (Affected_r { rows = n; txn_id })
        | "digest" -> Ok (Digest_r (Sjson.member "digest" obj))
        | "receipt" -> Ok (Receipt_r (Sjson.member "receipt" obj))
        | "receipts" ->
            let receipts =
              match Sjson.member "receipts" obj with
              | Sjson.List items -> items
              | _ -> []
            in
            let* pending =
              match Sjson.member "pending" obj with
              | Sjson.Null -> Ok []
              | Sjson.List items ->
                  let rec go acc = function
                    | [] -> Ok (List.rev acc)
                    | Sjson.Int i :: rest -> go (i :: acc) rest
                    | _ -> Error "field \"pending\" must be a list of ints"
                  in
                  go [] items
              | _ -> Error "field \"pending\" must be a list"
            in
            let block_keys =
              match Sjson.member "block_keys" obj with
              | Sjson.List items -> items
              | _ -> []
            in
            Ok (Receipts_r { receipts; pending; block_keys })
        | "verify" ->
            let* blocks = int_field "blocks" obj in
            let* transactions = int_field "transactions" obj in
            let* versions = int_field "versions" obj in
            let* violations = string_list "violations" obj in
            let ok =
              match Sjson.member "ok" obj with
              | Sjson.Bool b -> b
              | _ -> violations = []
            in
            Ok
              (Verify_r
                 {
                   vs_ok = ok;
                   vs_blocks = blocks;
                   vs_transactions = transactions;
                   vs_versions = versions;
                   vs_violations = violations;
                 })
        | "stats" ->
            let* lines = string_list "lines" obj in
            Ok (Stats_r lines)
        | "subscribed" ->
            let* last_lsn = int_field "last_lsn" obj in
            Ok (Subscribed { last_lsn })
        | "snapshot" ->
            let* last_lsn = int_field "last_lsn" obj in
            Ok (Snapshot_r { snapshot = Sjson.member "snapshot" obj; last_lsn })
        | "shard_map" ->
            let* epoch = int_field "epoch" obj in
            let* shards =
              match Sjson.member "shards" obj with
              | Sjson.List items ->
                  let rec go acc = function
                    | [] -> Ok (List.rev acc)
                    | (Sjson.Obj _ as s) :: rest ->
                        let* host = str_field "host" s in
                        let* port = int_field "port" s in
                        go ((host, port) :: acc) rest
                    | _ -> Error "each shard must be an object"
                  in
                  go [] items
              | _ -> Error "missing field \"shards\""
            in
            Ok (Shard_map_r { epoch; shards })
        | "migrate" ->
            let* copied = int_field "copied" obj in
            let* last_key = value_list "last_key" obj in
            let finished =
              match Sjson.member "finished" obj with
              | Sjson.Bool b -> b
              | _ -> false
            in
            Ok (Migrate_r { copied; last_key; finished })
        | "bye" -> Ok Bye
        | "error" ->
            let* code_s = str_field "code" obj in
            let* message = str_field "message" obj in
            let code =
              Option.value (error_code_of_string code_s) ~default:Internal
            in
            let retry_after_ms =
              match Sjson.member "retry_after_ms" obj with
              | Sjson.Int ms -> Some ms
              | _ -> None
            in
            let map_epoch =
              match Sjson.member "map_epoch" obj with
              | Sjson.Int e -> Some e
              | _ -> None
            in
            Ok (Error_r { code; message; retry_after_ms; map_epoch })
        | other -> Error ("unknown response " ^ other))
  | _ -> Error "missing response discriminator \"resp\""
