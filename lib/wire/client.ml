(* Blocking TCP client for the ledger wire protocol.

   Shared by `sqlledger client` (one-shot and REPL), `bench serve`, and
   the server tests. [connect] performs the hello handshake and
   classifies the failures the CLI must distinguish: connection refused,
   protocol-version mismatch, and everything else. *)

type t = {
  conn : Frame.conn;
  mutable next_id : int;
  mutable server : string;
  mutable database : string;
}

type connect_error =
  | Refused of string  (** nothing listening / unreachable *)
  | Mismatch of string  (** server speaks another protocol version *)
  | Handshake of string  (** rejected hello (busy, junk reply, ...) *)

let connect_error_to_string = function
  | Refused m | Mismatch m | Handshake m -> m

let server t = t.server
let database t = t.database

let close t =
  (try Frame.send t.conn (Protocol.encode_request ~id:t.next_id Protocol.Quit)
   with Sys_error _ | Unix.Unix_error _ -> ());
  Frame.close t.conn

(* One request/response exchange. Transport and framing failures come
   back as [Error]; a server [Error_r] is a successful exchange and is
   returned as [Ok] for the caller to interpret. *)
let call t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  match Frame.send t.conn (Protocol.encode_request ~id req) with
  | exception Sys_error e -> Error ("send failed: " ^ e)
  | exception Unix.Unix_error (err, _, _) ->
      Error ("send failed: " ^ Unix.error_message err)
  | () -> (
      match Frame.recv t.conn with
      | exception Unix.Unix_error (err, _, _) ->
          Error ("receive failed: " ^ Unix.error_message err)
      | Frame.Eof -> Error "server closed the connection"
      | Frame.Truncated -> Error "connection torn mid-frame"
      | Frame.Junk b -> Error ("stream desynchronised (junk " ^ String.escaped b ^ ")")
      | Frame.Oversized { size; limit } ->
          Error (Printf.sprintf "response frame too large (%d > %d)" size limit)
      | Frame.Frame payload -> (
          match Protocol.decode_response payload with
          | Error e -> Error ("malformed response: " ^ e)
          | Ok (rid, resp) ->
              if rid <> id then
                Error
                  (Printf.sprintf "response id %d does not match request id %d"
                     rid id)
              else Ok resp))

let connect ?(client = "sqlledger") ~host ~port () =
  let addr =
    try Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          Unix.ADDR_INET (Unix.inet_addr_loopback, port)
      | { Unix.h_addr_list; _ } -> Unix.ADDR_INET (h_addr_list.(0), port))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Refused
           (Printf.sprintf "cannot connect to %s:%d: %s" host port
              (Unix.error_message err)))
  | () -> (
      let t =
        { conn = Frame.of_fd fd; next_id = 1; server = "?"; database = "?" }
      in
      let fail e =
        Frame.close t.conn;
        Error e
      in
      match
        call t (Protocol.Hello { version = Protocol.version; client })
      with
      | Error e -> fail (Handshake ("handshake failed: " ^ e))
      | Ok (Protocol.Welcome { version; server; database }) ->
          if version <> Protocol.version then
            fail
              (Mismatch
                 (Printf.sprintf
                    "protocol version mismatch: client %d, server %d"
                    Protocol.version version))
          else begin
            t.server <- server;
            t.database <- database;
            Ok t
          end
      | Ok (Protocol.Error_r { code = Protocol.Version_mismatch; message }) ->
          fail (Mismatch message)
      | Ok (Protocol.Error_r { message; _ }) ->
          fail (Handshake ("server rejected connection: " ^ message))
      | Ok _ -> fail (Handshake "unexpected reply to hello"))
