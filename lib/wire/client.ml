(* Blocking TCP client for the ledger wire protocol.

   Shared by `sqlledger client` (one-shot and REPL), `bench serve`, and
   the server tests. [connect] performs the hello handshake and
   classifies the failures the CLI must distinguish: connection refused,
   protocol-version mismatch, and everything else.

   Overload-aware calling conventions (see DESIGN.md "Overload and
   chaos"):

   - [call ?deadline_s] stamps the request envelope with the remaining
     budget (the server refuses to start work past it) and bounds the
     wait for the response bytes with the same budget, so a stalled
     server or link cannot hold the caller hostage.
   - [call_retry] wraps [call] in capped-exponential retry with full
     jitter. Transport failures are retried (with a reconnect) only for
     idempotent requests; the typed [Overloaded]/[Deadline_exceeded]
     errors are retried for *any* request, because the server guarantees
     it shed them before doing any work — and [Overloaded]'s
     retry-after hint is honoured as a floor on the sleep.
   - [connect_retry] applies the same backoff to connection establishment
     (a restarting primary refuses connections for a moment; a fleet of
     clients must not thundering-herd it). *)

type t = {
  mutable conn : Frame.conn;
  mutable next_id : int;
  mutable server : string;
  mutable database : string;
  host : string;
  port : int;
  client_name : string;
  principal : string option;  (* authenticated identity for the session *)
  secret : string option;  (* shared-secret contents backing the claim *)
  mutable retries : int;  (* attempts beyond the first, all reasons *)
  rng : int64 ref;  (* splitmix64 state for retry jitter *)
}

type connect_error =
  | Refused of string  (** nothing listening / unreachable *)
  | Mismatch of string  (** server speaks another protocol version *)
  | Auth of string  (** server rejected the principal claim *)
  | Handshake of string  (** rejected hello (busy, junk reply, ...) *)

let connect_error_to_string = function
  | Refused m | Mismatch m | Auth m | Handshake m -> m

let server t = t.server
let database t = t.database
let retries t = t.retries

let close t =
  (try Frame.send t.conn (Protocol.encode_request ~id:t.next_id Protocol.Quit)
   with Sys_error _ | Unix.Unix_error _ -> ());
  Frame.close t.conn

(* ------------------------------------------------------------------ *)
(* Jitter *)

(* splitmix64, self-contained so the wire library stays dependency-light.
   Seeded from the pid + clock by default; a caller that needs a
   reproducible schedule passes [?seed] to the retry entry points. *)
let mix64 state =
  let open Int64 in
  let z = add state 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform in [0, 1): the state advances by one fixed increment per draw
   (splitmix64's stream), the output is the mixed state. *)
let next_unit rng =
  rng := Int64.add !rng 0x9E3779B97F4A7C15L;
  let v = mix64 !rng in
  Int64.to_float (Int64.shift_right_logical v 11) /. 9007199254740992.0

let default_seed () =
  (Unix.getpid () * 1_000_003)
  lxor int_of_float (Unix.gettimeofday () *. 1e6)

(* Full jitter over a capped-exponential ceiling: sleep anywhere in
   [0, min(max, min * 2^attempt)], never below [floor] (the server's
   retry-after hint). Uniformly spreading the whole interval is what
   desynchronises a convoy of clients that all got shed at once. *)
let backoff_sleep rng ~attempt ~backoff_min ~backoff_max ~floor =
  let cap = Float.min backoff_max (backoff_min *. (2. ** float_of_int attempt)) in
  let d = Float.max floor (next_unit rng *. cap) in
  if d > 0. then Thread.delay d

(* ------------------------------------------------------------------ *)
(* One exchange *)

let deadline_ms_of seconds = max 1 (int_of_float (ceil (seconds *. 1000.)))

(* One request/response exchange. Transport and framing failures come
   back as [Error]; a server [Error_r] is a successful exchange and is
   returned as [Ok] for the caller to interpret. [?deadline_s] is the
   caller's remaining budget: it rides the envelope so the server can
   refuse stale work, and it bounds the local wait for the response. *)
let call ?deadline_s ?map_epoch t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  let deadline_ms = Option.map deadline_ms_of deadline_s in
  let deadline_at = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s in
  match
    Frame.send t.conn (Protocol.encode_request ~id ?deadline_ms ?map_epoch req)
  with
  | exception Sys_error e -> Error ("send failed: " ^ e)
  | exception Unix.Unix_error (err, _, _) ->
      Error ("send failed: " ^ Unix.error_message err)
  | () -> (
      let receive () =
        match deadline_at with
        | None -> Frame.recv t.conn
        | Some at ->
            let remaining = at -. Unix.gettimeofday () in
            if remaining <= 0. || not (Frame.poll t.conn remaining) then
              raise (Unix.Unix_error (Unix.ETIMEDOUT, "Client.call", ""))
            else
              Frame.recv ~read_timeout:(Float.max 0.01 (at -. Unix.gettimeofday ()))
                t.conn
      in
      match receive () with
      | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) ->
          Error "deadline exceeded waiting for the response"
      | exception Unix.Unix_error (err, _, _) ->
          Error ("receive failed: " ^ Unix.error_message err)
      | Frame.Eof -> Error "server closed the connection"
      | Frame.Truncated -> Error "connection torn mid-frame"
      | Frame.Junk b -> Error ("stream desynchronised (junk " ^ String.escaped b ^ ")")
      | Frame.Oversized { size; limit } ->
          Error (Printf.sprintf "response frame too large (%d > %d)" size limit)
      | Frame.Frame payload -> (
          match Protocol.decode_response payload with
          | Error e -> Error ("malformed response: " ^ e)
          | Ok (rid, resp) ->
              if rid <> id then
                Error
                  (Printf.sprintf "response id %d does not match request id %d"
                     rid id)
              else Ok resp))

(* ------------------------------------------------------------------ *)
(* Connecting *)

let dial ~host ~port =
  let addr =
    try Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          Unix.ADDR_INET (Unix.inet_addr_loopback, port)
      | { Unix.h_addr_list; _ } -> Unix.ADDR_INET (h_addr_list.(0), port))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Refused
           (Printf.sprintf "cannot connect to %s:%d: %s" host port
              (Unix.error_message err)))
  | () -> Ok fd

(* The handshake is always deadline-bounded: a healthy server answers
   Hello immediately, so an unanswered one means a dead or byte-eating
   link — without a bound, every caller (including connect_retry, whose
   budget is only consulted between attempts) would block forever on a
   held connection. *)
let default_hello_timeout = 30.0

let handshake ?(deadline_s = default_hello_timeout) t =
  let fail e =
    Frame.close t.conn;
    Error e
  in
  let auth =
    match (t.principal, t.secret) with
    | Some p, Some s -> Some (Protocol.principal_tag ~secret:s p)
    | Some p, None ->
        (* No secret: send the bare claim anyway; the server's reject
           names the real problem instead of a silent anonymous session. *)
        ignore p;
        None
    | None, _ -> None
  in
  match
    call ~deadline_s t
      (Protocol.Hello
         {
           version = Protocol.version;
           client = t.client_name;
           principal = t.principal;
           auth;
         })
  with
  | Error e -> fail (Handshake ("handshake failed: " ^ e))
  | Ok (Protocol.Welcome { version; server; database }) ->
      if version <> Protocol.version then
        fail
          (Mismatch
             (Printf.sprintf "protocol version mismatch: client %d, server %d"
                Protocol.version version))
      else begin
        t.server <- server;
        t.database <- database;
        Ok t
      end
  | Ok (Protocol.Error_r { code = Protocol.Version_mismatch; message; _ }) ->
      fail (Mismatch message)
  | Ok (Protocol.Error_r { code = Protocol.Auth_failed; message; _ }) ->
      fail (Auth message)
  | Ok (Protocol.Error_r { message; _ }) ->
      fail (Handshake ("server rejected connection: " ^ message))
  | Ok _ -> fail (Handshake "unexpected reply to hello")

let connect ?(client = "sqlledger") ?principal ?secret ?seed
    ?(hello_timeout_s = default_hello_timeout) ~host ~port () =
  match dial ~host ~port with
  | Error e -> Error e
  | Ok fd ->
      handshake ~deadline_s:hello_timeout_s
        {
          conn = Frame.of_fd fd;
          next_id = 1;
          server = "?";
          database = "?";
          host;
          port;
          client_name = client;
          principal;
          secret;
          retries = 0;
          rng =
            ref
              (Int64.of_int
                 (match seed with Some s -> s | None -> default_seed ()));
        }

(* Jittered capped-exponential retry around connection establishment.
   [Mismatch] is never retried (the peer will not change protocols), nor
   is [Auth] (the credentials will not improve on their own); refusals
   and busy/overloaded handshakes are, until the attempts or the
   deadline budget run out. *)
let connect_retry ?(client = "sqlledger") ?principal ?secret ?seed
    ?(max_attempts = 5) ?(backoff_min = 0.05) ?(backoff_max = 2.0) ?deadline_s
    ~host ~port () =
  let deadline_at = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s in
  let rng =
    (* One jitter stream across the whole attempt sequence; the connected
       [t] inherits it so call_retry continues where connect left off. *)
    ref (Int64.of_int (match seed with Some s -> s | None -> default_seed ()))
  in
  let rec go attempt =
    let hello_timeout_s =
      (* Each attempt's handshake is bounded by whichever is tighter:
         the default hello timeout or what is left of the caller's
         budget (floored so a nearly-spent budget still sends one
         quick probe rather than an instant failure). *)
      match deadline_at with
      | None -> default_hello_timeout
      | Some at ->
          Float.min default_hello_timeout
            (Float.max 0.05 (at -. Unix.gettimeofday ()))
    in
    match
      connect ~client ?principal ?secret ~seed:(Int64.to_int !rng)
        ~hello_timeout_s ~host ~port ()
    with
    | Ok t ->
        t.rng := !rng;
        Ok t
    | Error ((Mismatch _ | Auth _) as e) -> Error e
    | Error e ->
        let out_of_budget =
          match deadline_at with
          | Some at -> Unix.gettimeofday () >= at
          | None -> false
        in
        if attempt + 1 >= max_attempts || out_of_budget then Error e
        else begin
          backoff_sleep rng ~attempt ~backoff_min ~backoff_max ~floor:0.;
          go (attempt + 1)
        end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Retrying calls *)

(* Requests that are safe to re-send after a transport failure, where the
   client cannot know whether the server executed the lost exchange:
   pure reads plus the handshake. Writes are excluded — a torn
   connection after an INSERT leaves its outcome unknown, and resending
   could double-apply. (Typed [Overloaded]/[Deadline_exceeded] replies
   are a different matter: the server guarantees it did no work, so
   those are retried for every request kind.) *)
let is_idempotent = function
  | Protocol.Hello _ | Protocol.Ping | Protocol.Query _ | Protocol.Receipt _
  | Protocol.Verify _ | Protocol.Stats
  (* A migrate batch skips target keys that already exist, so replaying
     a batch whose reply was lost re-inserts nothing. *)
  | Protocol.Migrate _ ->
      true
  | _ -> false

let reconnect t =
  Frame.close t.conn;
  match dial ~host:t.host ~port:t.port with
  | Error e -> Error (connect_error_to_string e)
  | Ok fd -> (
      t.conn <- Frame.of_fd fd;
      match handshake t with
      | Ok _ -> Ok ()
      | Error e -> Error (connect_error_to_string e))

(* [?map_epoch] supplies the shard-map epoch to stamp on each attempt
   (re-read per attempt, so a refresh between attempts takes effect);
   [?on_wrong_shard] is called when the server refuses the routing as
   stale (passing the server's current epoch from the error) and should
   refetch the shard map, returning [true] to retry with the fresh
   routing or [false] to surface the error. [wrong_shard] is always
   refused before any work, so the retry is safe for every request
   kind — like [Overloaded], unlike transport errors. *)
let call_retry ?deadline_s ?(max_attempts = 5) ?(backoff_min = 0.01)
    ?(backoff_max = 1.0) ?map_epoch ?on_wrong_shard t req =
  let deadline_at = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s in
  let remaining () =
    Option.map (fun at -> at -. Unix.gettimeofday ()) deadline_at
  in
  let out_of_budget () =
    match remaining () with Some r -> r <= 0. | None -> false
  in
  let rec go attempt =
    let epoch_now =
      match map_epoch with Some get -> get () | None -> None
    in
    let result = call ?deadline_s:(remaining ()) ?map_epoch:epoch_now t req in
    let retry ~floor ~reconnect:needs_conn =
      if attempt + 1 >= max_attempts || out_of_budget () then result
      else begin
        t.retries <- t.retries + 1;
        backoff_sleep t.rng ~attempt ~backoff_min ~backoff_max ~floor;
        if needs_conn then
          match reconnect t with
          | Ok () -> go (attempt + 1)
          | Error _ ->
              if attempt + 2 >= max_attempts || out_of_budget () then result
              else go (attempt + 1)
        else go (attempt + 1)
      end
    in
    match result with
    | Ok (Protocol.Error_r { code = Protocol.Overloaded; retry_after_ms; _ }) ->
        let floor =
          match retry_after_ms with
          | Some ms -> float_of_int ms /. 1000.
          | None -> 0.
        in
        retry ~floor ~reconnect:false
    | Ok (Protocol.Error_r { code = Protocol.Deadline_exceeded; _ }) ->
        (* Refused unexecuted: safe to retry while budget remains. *)
        retry ~floor:0. ~reconnect:false
    | Ok
        (Protocol.Error_r
           { code = Protocol.Wrong_shard; map_epoch = server_epoch; _ }) -> (
        (* The routing was stale, nothing executed. Refresh the map
           through the caller's hook, then retry with the new epoch. *)
        match on_wrong_shard with
        | Some refresh when refresh ~server_epoch ->
            retry ~floor:0. ~reconnect:false
        | _ -> result)
    | Error _ when is_idempotent req -> retry ~floor:0. ~reconnect:true
    | other -> other
  in
  go 0
